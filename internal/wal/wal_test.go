package wal

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

// collect replays the log from LSN `from` into a slice of (typ, payload).
func collect(t *testing.T, l *Log, from uint64) (recs []struct {
	lsn  uint64
	typ  byte
	data []byte
}) {
	t.Helper()
	_, err := l.Replay(from, func(lsn uint64, typ byte, payload []byte) error {
		recs = append(recs, struct {
			lsn  uint64
			typ  byte
			data []byte
		}{lsn, typ, append([]byte(nil), payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

// appendN appends n records with deterministic payloads and returns the
// last LSN.
func appendN(t *testing.T, l *Log, n int) uint64 {
	t.Helper()
	var last uint64
	for i := 0; i < n; i++ {
		lsn, err := l.Append(byte(i%5+1), []byte(fmt.Sprintf("record-%d-%s", i, "xxxxxxxxxxxxxxxx")))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		last = lsn
	}
	return last
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segments)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	last := appendN(t, l, 20)
	if err := l.Commit(last); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != last {
		t.Fatalf("durable=%d want %d", got, last)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := collect(t, l2, 0)
	if len(recs) != 20 {
		t.Fatalf("replayed %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.lsn != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.lsn)
		}
		if want := fmt.Sprintf("record-%d-%s", i, "xxxxxxxxxxxxxxxx"); string(r.data) != want {
			t.Fatalf("record %d payload %q want %q", i, r.data, want)
		}
	}
	// Replay from the middle skips the prefix.
	if recs := collect(t, l2, 10); len(recs) != 10 || recs[0].lsn != 11 {
		t.Fatalf("replay from 10: got %d records, first lsn %d", len(recs), recs[0].lsn)
	}
	// New appends continue the LSN chain.
	lsn, err := l2.Append(9, []byte("after-reopen"))
	if err != nil || lsn != 21 {
		t.Fatalf("append after reopen: lsn=%d err=%v", lsn, err)
	}
}

func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	// Simulate a torn final frame: garbage appended at the tail.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var warned bool
	l2, err := Open(dir, Options{Logf: func(string, ...any) { warned = true }})
	if err != nil {
		t.Fatalf("open over torn tail must succeed: %v", err)
	}
	defer l2.Close()
	if !warned {
		t.Fatal("expected a torn-tail warning")
	}
	if recs := collect(t, l2, 0); len(recs) != 5 {
		t.Fatalf("replayed %d records, want the 5 valid ones", len(recs))
	}
	// The tail was physically truncated, so appends extend a clean file.
	if lsn, err := l2.Append(1, []byte("new")); err != nil || lsn != 6 {
		t.Fatalf("append after repair: lsn=%d err=%v", lsn, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{Logf: func(string, ...any) { t.Fatal("second open must be clean") }})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if recs := collect(t, l3, 0); len(recs) != 6 {
		t.Fatalf("replayed %d records after repair+append, want 6", len(recs))
	}
}

func TestBitFlipStopsReplayBeforeRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 8)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the 4th record: records 1-3 stay valid,
	// everything from the flipped record on is discarded.
	frameLen := (len(data) - segHeaderSize) / 8
	data[segHeaderSize+3*frameLen+frameHeaderSize+2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs := collect(t, l2, 0)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want the 3 before the bit flip", len(recs))
	}
	for i, r := range recs {
		if r.lsn != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.lsn)
		}
	}
}

func TestDuplicatedTailRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the last frame: its checksum is valid but its LSN
	// repeats, so strict LSN continuity must reject it.
	frameLen := (len(data) - segHeaderSize) / 4
	tail := data[len(data)-frameLen:]
	data = append(data, tail...)
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := collect(t, l2, 0); len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4 (duplicate tail dropped)", len(recs))
	}
	if lsn, _ := l2.Append(1, []byte("x")); lsn != 5 {
		t.Fatalf("next lsn %d, want 5", lsn)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	last := appendN(t, l, 50)
	if err := l.Commit(last); err != nil {
		t.Fatal(err)
	}
	st := l.StatsSnapshot()
	if st.Fsyncs != 1 {
		t.Fatalf("one commit covering 50 appends took %d fsyncs, want 1", st.Fsyncs)
	}
	// Commits at or below the durable horizon are free.
	for lsn := uint64(1); lsn <= last; lsn++ {
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.StatsSnapshot(); st.Fsyncs != 1 {
		t.Fatalf("redundant commits forced fsyncs: %d", st.Fsyncs)
	}
}

func TestConcurrentAppendCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncAlways, SegmentSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append(1, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := l.Commit(lsn); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
				if l.DurableLSN() < lsn {
					t.Errorf("commit returned before lsn %d durable", lsn)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.StatsSnapshot()
	if st.Appended != writers*per {
		t.Fatalf("appended %d, want %d", st.Appended, writers*per)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := collect(t, l2, 0); len(recs) != writers*per {
		t.Fatalf("replayed %d, want %d", len(recs), writers*per)
	}
}

func TestRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 60) // ~35 bytes/record: many segments
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	// A checkpoint at LSN 30: rotate, then drop fully-covered segments.
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveSegmentsBefore(30); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(segs) {
		t.Fatalf("truncation removed nothing: %d -> %d segments", len(segs), len(after))
	}
	// Records above the checkpoint LSN survive in full.
	recs := collect(t, l, 30)
	if len(recs) != 30 || recs[0].lsn != 31 || recs[len(recs)-1].lsn != 60 {
		t.Fatalf("replay(30): %d records, first %d", len(recs), recs[0].lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen continues after the highest retained LSN.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if lsn, _ := l2.Append(1, []byte("z")); lsn != 61 {
		t.Fatalf("next lsn %d, want 61", lsn)
	}
}

func TestStartLSNSeedsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{StartLSN: 101})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if lsn, _ := l.Append(1, []byte("x")); lsn != 101 {
		t.Fatalf("first lsn %d, want 101", lsn)
	}
}

func TestFaultTear(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultTear, 300)
	l, err := Open(dir, Options{Policy: SyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	acked := uint64(0)
	for i := 0; i < 50; i++ {
		lsn, err := l.Append(1, []byte(fmt.Sprintf("record-%02d-payload", i)))
		if err != nil {
			break
		}
		if err := l.Commit(lsn); err != nil {
			break
		}
		acked = lsn
	}
	if !ffs.Tripped() {
		t.Fatal("fault never fired")
	}
	if acked == 0 {
		t.Fatal("no commit succeeded before the fault")
	}
	_ = l.Close() // errors expected; the point is what's on disk

	var warned bool
	l2, err := Open(dir, Options{Logf: func(string, ...any) { warned = true }})
	if err != nil {
		t.Fatalf("open over torn write: %v", err)
	}
	defer l2.Close()
	recs := collect(t, l2, 0)
	// Every acknowledged commit must be recovered; the torn record
	// beyond them may or may not survive, but the prefix is intact.
	if uint64(len(recs)) < acked {
		t.Fatalf("recovered %d records < %d acknowledged", len(recs), acked)
	}
	for i, r := range recs {
		if r.lsn != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.lsn)
		}
	}
	_ = warned // a warning may or may not fire: the tear can land exactly on a frame boundary
}

func TestFaultDrop(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultDrop, 350)
	l, err := Open(dir, Options{Policy: SyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	var acked []uint64
	for i := 0; i < 40; i++ {
		lsn, err := l.Append(1, []byte(fmt.Sprintf("record-%02d-payload", i)))
		if err != nil {
			t.Fatalf("drop mode must not error appends: %v", err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatalf("drop mode must not error commits: %v", err)
		}
		acked = append(acked, lsn)
	}
	if !ffs.Tripped() {
		t.Fatal("fault never fired")
	}
	if len(acked) != 40 {
		t.Fatalf("device lied, so all 40 commits must have acked; got %d", len(acked))
	}
	_ = l.Close()

	l2, err := Open(dir, Options{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatalf("open after dropped writes: %v", err)
	}
	defer l2.Close()
	recs := collect(t, l2, 0)
	// Some acknowledged records are gone — that is the point of drop
	// mode — but what remains is a strict prefix.
	if len(recs) >= 40 {
		t.Fatalf("expected dropped records, recovered all %d", len(recs))
	}
	for i, r := range recs {
		if r.lsn != uint64(i+1) {
			t.Fatalf("record %d has lsn %d: not a prefix", i, r.lsn)
		}
		if want := fmt.Sprintf("record-%02d-payload", i); !bytes.Equal(r.data, []byte(want)) {
			t.Fatalf("record %d payload %q want %q", i, r.data, want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"interval", SyncInterval, true},
		{"off", SyncOff, true},
		{"sometimes", SyncAlways, false},
		{"", SyncAlways, false},
	} {
		got, ok := ParsePolicy(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParsePolicy(%q) = %v,%v want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestCloseIsIdempotentAndFinal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Policy: SyncInterval, Interval: 5 * 1e6})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(1, []byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	// A clean close flushed everything, even under SyncInterval.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if recs := collect(t, l2, 0); len(recs) != 3 {
		t.Fatalf("replayed %d, want 3", len(recs))
	}
}
