package wal

import (
	"errors"
	"os"
	"sync"
)

// FS abstracts the append side of the filesystem so tests can inject
// write faults. Only writes are virtualized: recovery reads and
// truncation repair always go through the real OS, because fault
// injection models losing data on the way down, not on the way back up.
type FS interface {
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (File, error)
}

// File is the slice of *os.File the log needs.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// FaultMode selects how a FaultFS misbehaves once its byte budget is
// spent.
type FaultMode int

const (
	// FaultTear writes the budget-crossing call partially and fails it;
	// every later write and sync fails too. Models a torn page at power
	// loss: the process sees the error, the disk holds a partial frame.
	FaultTear FaultMode = iota
	// FaultDrop silently discards bytes past the budget while reporting
	// success — including Sync. Models a device (or crashing kernel)
	// that acknowledged writes it never made stable: the process
	// happily acks commits that are gone after reopen.
	FaultDrop
)

// ErrInjected is the failure FaultTear surfaces.
var ErrInjected = errors.New("wal: injected write fault")

// FaultFS wraps a base FS and injects a single fault after budget
// bytes have been written across all files it opened. The crash
// harness uses it to land failures mid-frame and mid-fsync.
type FaultFS struct {
	base FS

	mu      sync.Mutex
	budget  int64
	mode    FaultMode
	tripped bool
}

// NewFaultFS builds a FaultFS over base (nil means the OS filesystem)
// that misbehaves per mode once budget bytes have been written.
func NewFaultFS(base FS, mode FaultMode, budget int64) *FaultFS {
	if base == nil {
		base = OSFS{}
	}
	return &FaultFS{base: base, mode: mode, budget: budget}
}

// Tripped reports whether the fault has fired.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// OpenAppend implements FS. All files share the FaultFS's budget.
func (f *FaultFS) OpenAppend(path string) (File, error) {
	inner, err := f.base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tripped {
		if f.mode == FaultDrop {
			return len(p), nil
		}
		return 0, ErrInjected
	}
	if f.budget >= int64(len(p)) {
		f.budget -= int64(len(p))
		return ff.inner.Write(p)
	}
	// This write crosses the budget: land a prefix, then fault.
	keep := int(f.budget)
	f.budget = 0
	f.tripped = true
	if keep > 0 {
		if n, werr := ff.inner.Write(p[:keep]); werr != nil {
			return n, werr
		}
	}
	if f.mode == FaultDrop {
		return len(p), nil
	}
	return keep, ErrInjected
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	tripped, mode := f.tripped, f.mode
	f.mu.Unlock()
	if tripped {
		if mode == FaultDrop {
			// The lie: report stable storage for bytes never written.
			return nil
		}
		return ErrInjected
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
