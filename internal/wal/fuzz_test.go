package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildValidLog renders a segment image holding n small records
// starting at LSN 1 — the fuzz corpus seed.
func buildValidLog(n int) []byte {
	var data []byte
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], 1)
	data = append(data, hdr[:]...)
	for i := 0; i < n; i++ {
		payload := []byte{byte(i), byte(i >> 8), 0xab, 0xcd}
		var fh [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(fh[4:8], uint32(len(payload)))
		binary.LittleEndian.PutUint64(fh[8:16], uint64(i+1))
		fh[16] = byte(i%5 + 1)
		body := append(fh[8:frameHeaderSize:frameHeaderSize], payload...)
		binary.LittleEndian.PutUint32(fh[0:4], crc32.Checksum(body, castagnoli))
		data = append(data, fh[:]...)
		data = append(data, payload...)
	}
	return data
}

// FuzzWALReplay feeds arbitrary bytes to the segment scanner via a real
// Open+Replay cycle and asserts the recovery invariants: never panic,
// never deliver a record whose checksum or LSN continuity failed, and
// always deliver a gap-free LSN sequence.
func FuzzWALReplay(f *testing.F) {
	valid := buildValidLog(3)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                                         // truncated tail
	f.Add(append(append([]byte{}, valid...), valid[len(valid)-25:]...)) // duplicated tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-2] ^= 0x10
	f.Add(flipped) // bit-flipped tail
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[segHeaderSize+4:], ^uint32(0)) // absurd length field
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			// Open may fail on filesystem errors, never panic.
			return
		}
		defer l.Close()
		var prev uint64
		n, err := l.Replay(0, func(lsn uint64, typ byte, payload []byte) error {
			if lsn != prev+1 {
				t.Fatalf("LSN gap: %d after %d", lsn, prev)
			}
			if uint64(len(payload)) > MaxPayload {
				t.Fatalf("oversized payload delivered: %d", len(payload))
			}
			prev = lsn
			return nil
		})
		if err != nil {
			t.Fatalf("replay errored on fuzzed input: %v", err)
		}
		if n != int64(prev) {
			t.Fatalf("count %d != last lsn %d", n, prev)
		}
		// Appending after a repair must keep the chain consistent.
		lsn, aerr := l.Append(1, []byte("post-fuzz"))
		if aerr != nil {
			t.Fatalf("append after repair: %v", aerr)
		}
		if lsn != prev+1 {
			t.Fatalf("append assigned lsn %d after prefix %d", lsn, prev)
		}
	})
}
