package crashtest

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"hique"
	"hique/internal/wal"
)

// The child/parent protocol: the parent re-execs the test binary with
// HIQUE_CRASH_CHILD set; TestMain diverts the child into childMain,
// which opens the shared data directory, executes the deterministic
// statement list from its start index, and prints "ack <i>" after each
// statement the database has acknowledged as durable.
func TestMain(m *testing.M) {
	if os.Getenv("HIQUE_CRASH_CHILD") != "" {
		childMain()
		return
	}
	os.Exit(m.Run())
}

// stmt is one entry in the deterministic workload. Parent, child, and
// the parent's in-memory model all apply the identical list.
type stmt struct {
	ddl bool   // CREATE TABLE kv (statement 0 only)
	idx bool   // BuildIndex(kv.k) — idempotent, safe to replay
	sql string // otherwise an INSERT/DELETE/UPDATE statement
}

func (s stmt) apply(db *hique.DB) error {
	switch {
	case s.ddl:
		return db.CreateTable("kv", hique.Int("k"), hique.Float("v"), hique.Char("s", 8))
	case s.idx:
		return db.BuildIndex("kv", "k")
	default:
		_, err := db.Exec(s.sql)
		return err
	}
}

// genStatements derives the workload from the seed: a CREATE TABLE,
// two index builds mid-stream, and a literal-valued mix of batched
// inserts, key deletes, and range updates over a small key space so
// the write statements actually collide.
func genStatements(seed int64, n int) []stmt {
	rng := rand.New(rand.NewSource(seed))
	stmts := []stmt{{ddl: true}}
	for i := 1; i < n; i++ {
		if i == n/4 || i == n/2 {
			stmts = append(stmts, stmt{idx: true})
			continue
		}
		switch r := rng.Intn(10); {
		case r < 6: // batched insert, 1..3 rows
			rows := 1 + rng.Intn(3)
			vals := make([]string, rows)
			for j := range vals {
				k := rng.Intn(400)
				vals[j] = fmt.Sprintf("(%d, %d.25, 'r%d')", k, rng.Intn(50), k%100)
			}
			stmts = append(stmts, stmt{sql: "INSERT INTO kv VALUES " + strings.Join(vals, ", ")})
		case r < 8:
			stmts = append(stmts, stmt{sql: fmt.Sprintf("DELETE FROM kv WHERE k = %d", rng.Intn(400))})
		default:
			stmts = append(stmts, stmt{sql: fmt.Sprintf("UPDATE kv SET v = %d.5, s = 'u%d' WHERE k >= %d",
				rng.Intn(50), rng.Intn(90), 250+rng.Intn(150))})
		}
	}
	return stmts
}

func childMain() {
	dir := os.Getenv("HIQUE_CRASH_DIR")
	seed, _ := strconv.ParseInt(os.Getenv("HIQUE_CRASH_SEED"), 10, 64)
	start, _ := strconv.Atoi(os.Getenv("HIQUE_CRASH_START"))
	n, _ := strconv.Atoi(os.Getenv("HIQUE_CRASH_N"))
	opts := []hique.Option{
		hique.WithFsync(hique.FsyncAlways),
		hique.WithDurabilityLogf(func(string, ...any) {}),
	}
	if ms, _ := strconv.Atoi(os.Getenv("HIQUE_CRASH_CKPT_MS")); ms > 0 {
		opts = append(opts, hique.WithCheckpointInterval(time.Duration(ms)*time.Millisecond))
	}
	if b, _ := strconv.ParseInt(os.Getenv("HIQUE_CRASH_TEAR"), 10, 64); b > 0 {
		opts = append(opts, hique.WithWALFS(wal.NewFaultFS(nil, wal.FaultTear, b)))
	}
	if b, _ := strconv.ParseInt(os.Getenv("HIQUE_CRASH_DROP"), 10, 64); b > 0 {
		opts = append(opts, hique.WithWALFS(wal.NewFaultFS(nil, wal.FaultDrop, b)))
	}
	db, err := hique.OpenDurable(dir, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "child open: %v\n", err)
		os.Exit(2)
	}
	for i, s := range genStatements(seed, n)[start:] {
		if err := s.apply(db); err != nil {
			// Expected once an injected fault trips: the statement is
			// not acknowledged and the child stops, like a real server
			// falling over on a dying disk.
			fmt.Printf("fault %d %v\n", start+i, err)
			os.Exit(3)
		}
		fmt.Printf("ack %d\n", start+i)
	}
	if err := db.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "child close: %v\n", err)
		os.Exit(2)
	}
	fmt.Println("done")
	os.Exit(0)
}

// runChild spawns the ingest child and returns how many statements it
// acknowledged in total (absolute count from the start of the
// workload) and whether it shut down cleanly. killAfter is the
// absolute acknowledgement count at which the parent SIGKILLs it; pass
// a count past the workload end to let injected faults or completion
// stop it instead.
func runChild(t *testing.T, dir string, seed int64, n, start, killAfter int, extraEnv ...string) (acked int, clean bool) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"HIQUE_CRASH_CHILD=1",
		"HIQUE_CRASH_DIR="+dir,
		fmt.Sprintf("HIQUE_CRASH_SEED=%d", seed),
		fmt.Sprintf("HIQUE_CRASH_N=%d", n),
		fmt.Sprintf("HIQUE_CRASH_START=%d", start),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	acked = start
	faulted := false
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "ack "):
			i, _ := strconv.Atoi(line[4:])
			acked = i + 1
		case line == "done":
			clean = true
		case strings.HasPrefix(line, "fault "):
			faulted = true
		}
		if acked >= killAfter {
			cmd.Process.Kill()
			break
		}
	}
	cmd.Wait() // non-nil after SIGKILL or a fault exit; state checks follow
	if !clean && !faulted && acked < killAfter {
		t.Fatalf("child died unexpectedly at ack=%d: %s", acked, stderr.String())
	}
	return acked, clean
}

// dumpHolistic renders the full kv state (heap order included) under
// one engine; "<no-table>" stands for the pre-DDL state.
func dumpEngine(t *testing.T, db *hique.DB, e hique.Engine) string {
	t.Helper()
	db.SetEngine(e)
	res, err := db.Query("SELECT k, v, s FROM kv")
	if err != nil {
		if strings.Contains(err.Error(), "kv") {
			return "<no-table>"
		}
		t.Fatalf("dump: %v", err)
	}
	return fmt.Sprintf("%v", res.Rows)
}

var engines = []hique.Engine{
	hique.Holistic, hique.GenericIterators, hique.OptimizedIterators,
	hique.ColumnStore, hique.HolisticUnoptimized,
}

// verifyPrefix reopens the crashed directory and locates the unique
// statement count k whose model state matches the recovered state,
// advancing the shared model to k. Every recovery must be SOME prefix;
// rounds where the device never lied (SIGKILL, torn writes) must also
// satisfy k >= acked — nothing acknowledged may be lost. The recovered
// state must agree byte-for-byte with the model under all five
// engines. Returns k, with the directory checkpointed and closed so
// the next round resumes from statement k.
func verifyPrefix(t *testing.T, dir string, stmts []stmt, model *hique.DB, kStart, acked int, ackedDurable bool) int {
	t.Helper()
	db, err := hique.OpenDurable(dir, hique.WithDurabilityLogf(t.Logf))
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer db.Close()
	got := dumpEngine(t, db, hique.Holistic)
	k := kStart
	for dumpEngine(t, model, hique.Holistic) != got {
		if k >= len(stmts) {
			t.Fatalf("recovered state matches no prefix of the workload (searched from %d)", kStart)
		}
		if err := stmts[k].apply(model); err != nil {
			t.Fatalf("model statement %d: %v", k, err)
		}
		k++
	}
	// The scan stops at the FIRST matching prefix; statements that
	// matched no rows leave the state unchanged, so the true prefix may
	// extend further. When every acknowledged statement was fsynced,
	// push the model to the acknowledgement point — any statement that
	// changes the state before we get there was genuinely lost.
	for ackedDurable && k < acked {
		if err := stmts[k].apply(model); err != nil {
			t.Fatalf("model statement %d: %v", k, err)
		}
		k++
		if dumpEngine(t, model, hique.Holistic) != got {
			t.Fatalf("lost acknowledged statement %d: recovered state stops before acked=%d", k-1, acked)
		}
	}
	for _, e := range engines {
		if w, g := dumpEngine(t, model, e), dumpEngine(t, db, e); g != w {
			t.Fatalf("engine %v disagrees with model at prefix %d:\nmodel:     %s\nrecovered: %s", e, k, w, g)
		}
	}
	rs := db.RecoveryStats()
	t.Logf("  recovered prefix k=%d (acked=%d, snapshotLSN=%d, replayed=%d)",
		k, acked, rs.SnapshotLSN, rs.ReplayedRecords)
	return k
}

// TestCrashRecovery is the harness entry point. Every round crashes an
// ingest child a different way against the same data directory and
// proves recovery lands on a consistent acknowledged prefix. The seed
// is logged; export HIQUE_CRASH_SEED to replay a failure, and
// HIQUE_CRASH_KILLS to raise the SIGKILL round count in CI.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness re-execs child processes; skipped in -short")
	}
	seed := time.Now().UnixNano()
	if s := os.Getenv("HIQUE_CRASH_SEED"); s != "" {
		seed, _ = strconv.ParseInt(s, 10, 64)
	}
	kills := 3
	if s := os.Getenv("HIQUE_CRASH_KILLS"); s != "" {
		kills, _ = strconv.Atoi(s)
	}
	t.Logf("crash harness seed=%d (export HIQUE_CRASH_SEED=%d to reproduce)", seed, seed)

	const n = 120
	dir := t.TempDir()
	stmts := genStatements(seed, n)
	model := hique.Open()
	rng := rand.New(rand.NewSource(seed))
	k := 0

	// SIGKILL rounds: kill between statements (including during the
	// child's own recovery when the target lands on the current k).
	// Targets stay below a reserve so the fault rounds below always
	// have workload left to corrupt.
	const reserve = 50
	for round := 0; round < kills && k < n-reserve; round++ {
		target := k + rng.Intn(n-reserve-k) + 1
		acked, _ := runChild(t, dir, seed, n, k, target, "HIQUE_CRASH_CKPT_MS=20")
		t.Logf("kill round %d: started at %d, SIGKILL at ack %d", round, k, acked)
		k = verifyPrefix(t, dir, stmts, model, k, acked, true)
	}

	// Torn-write round: the WAL file tears mid-write after a byte
	// budget, then every later write and fsync fails. Acknowledged
	// statements were fsynced before the tear, so they must survive.
	if k < n {
		budget := 400 + rng.Int63n(400)
		acked, _ := runChild(t, dir, seed, n, k, n+1,
			fmt.Sprintf("HIQUE_CRASH_TEAR=%d", budget))
		t.Logf("tear round: started at %d, budget %d, stopped at ack %d", k, budget, acked)
		k = verifyPrefix(t, dir, stmts, model, k, acked, true)
	}

	// Lying-device round: past the budget the file silently discards
	// writes and reports fsync success, and the child is killed before
	// any checkpoint can save it. Acknowledged statements MAY be lost
	// — the guarantee that remains is a consistent prefix.
	if k < n {
		budget := 300 + rng.Int63n(300)
		target := k + rng.Intn(n-k) + 1
		acked, _ := runChild(t, dir, seed, n, k, target,
			fmt.Sprintf("HIQUE_CRASH_DROP=%d", budget))
		t.Logf("drop round: started at %d, budget %d, SIGKILL at ack %d", k, budget, acked)
		k = verifyPrefix(t, dir, stmts, model, k, acked, false)
	}

	// Final round: run to completion with a clean shutdown; recovery
	// must land exactly on the full workload.
	acked, clean := runChild(t, dir, seed, n, k, n+1, "HIQUE_CRASH_CKPT_MS=20")
	if !clean || acked != n {
		t.Fatalf("final round: clean=%v acked=%d, want clean completion of %d", clean, acked, n)
	}
	if k = verifyPrefix(t, dir, stmts, model, k, acked, true); k != n {
		t.Fatalf("final recovery stopped at prefix %d, want %d", k, n)
	}
}
