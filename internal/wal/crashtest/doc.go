// Package crashtest is the durability crash-injection harness. Its test
// re-execs the test binary as a child ingest process against a shared
// data directory, then crashes the child at randomized points — SIGKILL
// between statements, torn writes mid-frame, and a device that lies
// about fsync (wal.FaultFS) — and asserts that the reopened database is
// always a consistent prefix of the acknowledged statement stream,
// byte-identical across all five execution engines. The package holds
// no non-test code.
package crashtest
