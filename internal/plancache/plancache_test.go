package plancache

import (
	"fmt"
	"testing"
)

type artefact struct{ id int }

func dummy() *artefact { return &artefact{} }

// at returns a stamp callback reporting the given current catalogue stamp.
func at(stamp uint64) func(any) uint64 {
	return func(any) uint64 { return stamp }
}

func TestHitMissCounters(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("q1", at(1)); ok {
		t.Fatal("hit on empty cache")
	}
	q := dummy()
	c.Put("q1", 1, q)
	got, ok := c.Get("q1", at(1))
	if !ok || got != q {
		t.Fatal("expected hit returning the stored query")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Invalidations != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestVersionMismatchInvalidates(t *testing.T) {
	c := New(4)
	c.Put("q1", 1, dummy())
	if _, ok := c.Get("q1", at(2)); ok {
		t.Fatal("stale entry served despite version bump")
	}
	if _, ok := c.Get("q1", at(1)); ok {
		t.Fatal("invalidated entry still present")
	}
	s := c.Stats()
	if s.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", s.Invalidations)
	}
	if s.Misses != 2 {
		t.Fatalf("misses = %d, want 2", s.Misses)
	}
	if s.Entries != 0 {
		t.Fatalf("entries = %d, want 0", s.Entries)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1, dummy())
	c.Put("b", 1, dummy())
	if _, ok := c.Get("a", at(1)); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", 1, dummy()) // evicts b
	if _, ok := c.Get("b", at(1)); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a", at(1)); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c", at(1)); !ok {
		t.Fatal("c should be present")
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.Entries != 2 {
		t.Fatalf("entries = %d, want 2", s.Entries)
	}
}

func TestPutReplacesInPlace(t *testing.T) {
	c := New(2)
	q1, q2 := dummy(), dummy()
	c.Put("a", 1, q1)
	c.Put("a", 2, q2)
	if got, ok := c.Get("a", at(2)); !ok || got != q2 {
		t.Fatal("replacement not visible")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestPurge(t *testing.T) {
	c := New(4)
	c.Put("a", 1, dummy())
	c.Put("b", 1, dummy())
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	if _, ok := c.Get("a", at(1)); ok {
		t.Fatal("purged entry served")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("q%d", (g+i)%32)
				if _, ok := c.Get(key, at(uint64(i%3))); !ok {
					c.Put(key, uint64(i%3), dummy())
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	close(done)
	s := c.Stats()
	if s.Hits+s.Misses != 8*500 {
		t.Fatalf("lookups = %d, want %d", s.Hits+s.Misses, 8*500)
	}
}

func TestInvalidateReclassifiesHit(t *testing.T) {
	c := New(4)
	c.Put("q1", 1, dummy())
	// Two callers hit the same entry, then both reject it after their
	// under-lock re-check: each takes back its own hit, the entry drop
	// counts once.
	if _, ok := c.Get("q1", at(1)); !ok {
		t.Fatal("expected hit")
	}
	if _, ok := c.Get("q1", at(1)); !ok {
		t.Fatal("expected hit")
	}
	c.Invalidate("q1")
	c.Invalidate("q1")
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 2 || s.Invalidations != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses / 1 invalidation", s)
	}
}
