// Package plancache caches compiled holistic queries so repeated
// statements skip the whole preparation pipeline — parse, optimise,
// generate, compile — whose cost the paper quantifies in Table III. The
// cache is the amortisation layer of the serving subsystem: HIQUE's bet
// is that per-query code generation buys runtime speed at a measurable
// preparation cost, and a serving workload repeats queries, so the cost
// is paid once per distinct statement per catalogue version.
//
// Entries are keyed by codegen.CacheKey (normalised SQL + optimizer
// configuration) and stamped with a catalogue stamp (epoch + referenced
// tables' versions) taken at compile time. A lookup whose stored stamp
// differs from the current stamp evicts the entry and reports a miss —
// stale plans self-invalidate on the next touch, no invalidation
// broadcast needed. Eviction is LRU.
//
// Callers: hique.DB owns two instances — the read cache (compiled-query
// entries wrapped with their metric handles) and the write cache (*plan.WritePlan
// values, "dml\0"-prefixed keys; the key spaces cannot collide). Cached
// values are immutable and shared across concurrent executions: the
// cache hands out the same pointer to every hitter, so anything
// per-execution (bind vectors, scratches, results) lives outside the
// cached artefact. GetStamped is the warm path's spelling: it takes the
// key as bytes from a pooled buffer and leaves stamp validation to the
// caller, which re-checks under the table locks it holds.
package plancache

import (
	"container/list"
	"sync"
)

// DefaultCapacity is the entry bound used when New is given a
// non-positive capacity.
const DefaultCapacity = 256

// Stats are the cache's monotonic counters plus its current size.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"` // entries dropped on version mismatch
	Evictions     uint64 `json:"evictions"`     // entries dropped by LRU pressure
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
}

type entry struct {
	key   string
	stamp uint64
	value any
}

// Cache is a fixed-capacity LRU of compiled artefacts, safe for
// concurrent use. Values are opaque to the cache: the read path stores
// its compiled-query wrapper, the write path *plan.WritePlan — the two key
// spaces cannot collide (read keys are length-prefixed, write keys carry
// a distinct prefix), so each caller type-asserts its own entries.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *entry
	items    map[string]*list.Element

	hits, misses, invalidations, evictions uint64
}

// New creates a cache bounded to capacity entries (DefaultCapacity if
// capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the value cached under key, provided its stored stamp
// matches the value stampOf computes from the cached value (the caller
// derives the current catalogue stamp from the plan's referenced
// tables). A mismatch drops the entry (counted as an invalidation) and
// reports a miss. stampOf runs under the cache lock; it must not call
// back into the cache.
func (c *Cache) Get(key string, stampOf func(any) uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	e := el.Value.(*entry)
	if e.stamp != stampOf(e.value) {
		c.ll.Remove(el)
		delete(c.items, key)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return e.value, true
}

// GetStamped returns the value cached under key together with
// the catalogue stamp it was stored with, leaving validation to the
// caller: compare the stored stamp against the current catalogue stamp
// under the table locks and call Invalidate on a mismatch (which
// reclassifies this hit as a miss). The key is passed as bytes so a warm
// caller can probe with a pooled buffer — the lookup itself allocates
// nothing.
func (c *Cache) GetStamped(key []byte) (any, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[string(key)]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	e := el.Value.(*entry)
	c.ll.MoveToFront(el)
	c.hits++
	return e.value, e.stamp, true
}

// Put stores a compiled artefact under key with the catalogue stamp it
// was compiled against, evicting the least recently used entry if the
// cache is full.
func (c *Cache) Put(key string, stamp uint64, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		e.stamp = stamp
		e.value = v
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*entry).key)
			c.evictions++
		}
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, stamp: stamp, value: v})
}

// Invalidate drops the entry under key after the caller's post-lookup
// validation failed (a writer raced in between Get and the caller's
// table locks). The caller's premature hit is always reclassified as a
// miss — even when a concurrent invalidator already removed the entry,
// each rejecting caller had its own counted hit to take back — while
// the invalidation counter tracks entries actually dropped. Call only
// after a Get on the same key returned true.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses++
	if c.hits > 0 {
		c.hits--
	}
	el, ok := c.items[key]
	if !ok {
		return
	}
	c.ll.Remove(el)
	delete(c.items, key)
	c.invalidations++
}

// Purge empties the cache; counters are preserved.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.capacity)
}

// Len reports the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalidations,
		Evictions:     c.evictions,
		Entries:       c.ll.Len(),
		Capacity:      c.capacity,
	}
}
