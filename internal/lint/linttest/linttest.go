// Package linttest is hique's stand-in for
// golang.org/x/tools/go/analysis/analysistest: it type-checks fixture
// packages against source stubs of the engine's well-known types
// (catalog.TableEntry, storage.Table, core.Staged, the hique/runtime
// ABI), runs a set of analyzers through the real driver (so
// //lint:allow suppression is exercised too), and matches diagnostics
// against `// want "regex"` annotations in the fixture source.
//
// Fixtures live in each analyzer's testdata directory; the shared stubs
// live under this package's testdata/stubs, laid out by import path
// (testdata/stubs/hique/internal/catalog/...). Stubs import nothing but
// other stubs, so no export data or network is needed.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hique/internal/lint/analysis"
	"hique/internal/lint/driver"
)

// StubRoot returns the shared stub tree (testdata/stubs next to this
// file), located via the caller path so analyzer packages can use it
// from their own directories.
func StubRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		panic("linttest: cannot locate stub root")
	}
	return filepath.Join(filepath.Dir(file), "testdata", "stubs")
}

// stubImporter resolves import paths from stub source directories,
// type-checking them on first use. Stubs may import other stubs.
type stubImporter struct {
	fset  *token.FileSet
	root  string
	cache map[string]*types.Package
}

func (si *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := si.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(si.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("linttest: no stub for import %q (add one under %s): %v", path, si.root, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(si.fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: si}
	pkg, err := conf.Check(path, si.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("linttest: stub %q does not type-check: %v", path, err)
	}
	si.cache[path] = pkg
	return pkg, nil
}

// Analyze type-checks the fixture package in dir under the given import
// path and runs the analyzers through the driver, returning surviving
// diagnostics. Fixtures must type-check cleanly — a broken fixture is a
// test bug, not a finding.
func Analyze(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) []driver.Diagnostic {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var terrs []error
	conf := types.Config{
		Importer: &stubImporter{fset: token.NewFileSet(), root: StubRoot(), cache: map[string]*types.Package{}},
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	pkg, _ := conf.Check(importPath, fset, files, info)
	if len(terrs) > 0 {
		t.Fatalf("linttest: fixture %s does not type-check: %v", dir, terrs)
	}
	return driver.RunAnalyzers(fset, files, pkg, info, analyzers)
}

// want is one expected diagnostic: a regex anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRe extracts the expectation list from a source line. Patterns are
// double-quoted Go strings or backquoted raw strings after `// want`.
var wantRe = regexp.MustCompile(`// want (.*)$`)

var patRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: reading fixture dir: %v", err)
	}
	var out []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pats := patRe.FindAllString(m[1], -1)
			if len(pats) == 0 {
				t.Fatalf("linttest: %s:%d: `// want` with no quoted pattern", e.Name(), i+1)
			}
			for _, p := range pats {
				var raw string
				if p[0] == '`' {
					raw = p[1 : len(p)-1]
				} else {
					raw, err = strconv.Unquote(p)
					if err != nil {
						t.Fatalf("linttest: %s:%d: bad want pattern %s: %v", e.Name(), i+1, p, err)
					}
				}
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("linttest: %s:%d: want pattern does not compile: %v", e.Name(), i+1, err)
				}
				out = append(out, &want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	return out
}

// Run analyzes the fixture and matches diagnostics against its
// `// want` annotations: every diagnostic must be wanted on its line,
// and every want must be hit exactly once.
func Run(t *testing.T, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	diags := Analyze(t, dir, importPath, analyzers...)
	wants := collectWants(t, dir)
	for _, d := range diags {
		base := filepath.Base(d.Position.Filename)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == base && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
