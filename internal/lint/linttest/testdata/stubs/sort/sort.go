// Stub of the stdlib sort package: lockorder's hasSortBefore matches
// sort.Sort*/slices.Sort* calls, and fixtures must compile offline
// without gc export data for the real stdlib.
package sort

type Interface interface {
	Len() int
	Less(i, j int) bool
	Swap(i, j int)
}

func Sort(data Interface)                        {}
func Slice(x interface{}, less func(i, j int) bool) {}
