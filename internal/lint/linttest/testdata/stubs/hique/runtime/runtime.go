// Stub of the hique/runtime ABI for genwf fixtures.
package runtime

type Table struct{}

func StartPage(t *Table)                          {}
func EndPage(t *Table)                            {}
func Int64At(t *Table, row, col int) int64        { return 0 }
func Float64At(t *Table, row, col int) float64    { return 0 }
func PutInt64(t *Table, row, col int, v int64)    {}
func PutFloat64(t *Table, row, col int, v float64) {}
