// Stub of hique/internal/storage for analyzer fixtures.
package storage

type Table struct{}

func NewPooledTable() *Table { return &Table{} }

func (t *Table) Release()      {}
func (t *Table) NumRows() int  { return 0 }
func (t *Table) AppendRow()    {}
func (t *Table) NumPages() int { return 0 }
