// Stub of hique/internal/catalog for analyzer fixtures: same import
// path suffix and method set shape as the real package, no behavior.
package catalog

type TableEntry struct {
	id int64
}

func (e *TableEntry) ID() int64   { return e.id }
func (e *TableEntry) Lock()       {}
func (e *TableEntry) Unlock()     {}
func (e *TableEntry) RLock()      {}
func (e *TableEntry) RUnlock()    {}
func (e *TableEntry) NumRows() int { return 0 }
func (e *TableEntry) Name() string { return "" }
