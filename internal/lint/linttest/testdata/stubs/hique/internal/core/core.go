// Stub of hique/internal/core for analyzer fixtures.
package core

import "hique/internal/storage"

type Staged struct {
	T     *storage.Table
	Owned bool
}

func (s *Staged) Release() {}
func (s *Staged) Rows() int { return 0 }
