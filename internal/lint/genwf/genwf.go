// Package genwf checks the well-formedness of hique's *generated*
// fused/parallel query sources (codegen.EmitSource output). Malformed
// codegen used to surface only at first execution; this analyzer makes
// the generated-source contract checkable at test time, and enginetest
// runs it (plus full go/types checking) over the emitted source for the
// whole differential corpus.
//
// The contract for an emitted compilation unit:
//
//   - the package is named "query";
//   - the only import is the runtime ABI, "hique/runtime";
//   - a top-level entry function exists (`EvaluateQuery` for full
//     emitted units, `Run` for single-pipeline units);
//   - page lifecycles balance: every StartPage has a matching EndPage in
//     the same function (the arena's page accounting depends on it);
//   - column accessors (Int64At, Float64At, PutInt64, PutFloat64, ...)
//     are never called with a negative constant column index;
//   - generated code never calls panic directly (failures must flow
//     through the runtime ABI so the engine's containment sees them).
//
// The analyzer is a no-op on packages that are not generated query units
// (anything not named "query" that doesn't import hique/runtime), so it
// can run over the whole repository harmlessly.
package genwf

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strconv"

	"hique/internal/lint/analysis"
)

const runtimeImport = "hique/runtime"

// Analyzer is the genwf pass.
var Analyzer = &analysis.Analyzer{
	Name: "genwf",
	Doc:  "generated fused query sources obey the codegen contract",
	Run:  run,
}

// accessors maps runtime column accessors to the argument position of
// their column-index parameter.
var accessors = map[string]int{
	"Int64At":    2,
	"Float64At":  2,
	"BytesAt":    2,
	"PutInt64":   2,
	"PutFloat64": 2,
	"PutBytes":   2,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if !isGeneratedUnit(f) {
			continue
		}
		checkFile(pass, f)
	}
	return nil
}

// isGeneratedUnit recognizes an emitted query compilation unit: it
// imports the runtime ABI or is named "query".
func isGeneratedUnit(f *ast.File) bool {
	if f.Name.Name == "query" {
		return true
	}
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == runtimeImport {
			return true
		}
	}
	return false
}

func checkFile(pass *analysis.Pass, f *ast.File) {
	if f.Name.Name != "query" {
		pass.Reportf(f.Name.Pos(), "generated unit must be package query, got %q", f.Name.Name)
	}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != runtimeImport {
			pass.Reportf(imp.Pos(), "generated unit may only import %q, got %s", runtimeImport, imp.Path.Value)
		}
	}

	hasRun := false
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if (fd.Name.Name == "Run" || fd.Name.Name == "EvaluateQuery") && fd.Recv == nil {
			hasRun = true
		}
		if fd.Body == nil {
			continue
		}
		checkFuncBody(pass, fd)
	}
	if !hasRun {
		pass.Reportf(f.Name.Pos(), "generated unit has no top-level Run or EvaluateQuery entry function")
	}
}

func checkFuncBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	starts, ends := 0, 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		switch {
		case name == "panic":
			pass.Reportf(call.Pos(), "generated code must not call panic directly; route failures through the runtime ABI")
		case name == "StartPage":
			starts++
		case name == "EndPage":
			ends++
		default:
			if argIdx, ok := accessors[name]; ok && len(call.Args) > argIdx {
				checkColumnIndex(pass, call, call.Args[argIdx])
			}
		}
		return true
	})
	if starts != ends {
		pass.Reportf(fd.Pos(), "unbalanced page lifecycle in %s: %d StartPage vs %d EndPage calls", fd.Name.Name, starts, ends)
	}
}

// checkColumnIndex flags negative constant column indexes.
func checkColumnIndex(pass *analysis.Pass, call *ast.CallExpr, arg ast.Expr) {
	var val constant.Value
	if pass.TypesInfo != nil {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
			val = tv.Value
		}
	}
	if val == nil {
		// Syntactic fallback: -<lit>.
		if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.SUB {
			if _, ok := ue.X.(*ast.BasicLit); ok {
				pass.Reportf(call.Pos(), "negative constant column index in %s call", calleeName(call))
			}
		}
		return
	}
	if val.Kind() == constant.Int {
		if i, ok := constant.Int64Val(val); ok && i < 0 {
			pass.Reportf(call.Pos(), "negative constant column index %d in %s call", i, calleeName(call))
		}
	}
}

// calleeName extracts the bare callee name (runtime.X → X, X → X).
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		// Only count runtime-qualified (or any pkg-qualified) selector
		// whose base is an identifier — method calls on locals have
		// expression bases and are not ABI calls.
		if _, ok := fn.X.(*ast.Ident); ok {
			return fn.Sel.Name
		}
		return fn.Sel.Name + "." // method; never matches the ABI tables
	}
	return ""
}
