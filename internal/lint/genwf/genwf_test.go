package genwf_test

import (
	"testing"

	"hique/internal/lint/genwf"
	"hique/internal/lint/linttest"
)

func TestGenWellFormed(t *testing.T) {
	linttest.Run(t, "testdata/goodunit", "hique/internal/codegen/query", genwf.Analyzer)
}

func TestGenViolations(t *testing.T) {
	linttest.Run(t, "testdata/badunit", "hique/internal/codegen/query", genwf.Analyzer)
}

func TestNotQueryUnit(t *testing.T) {
	linttest.Run(t, "testdata/notquery", "hique/internal/codegen/notquery", genwf.Analyzer)
}
