// A unit that imports the runtime ABI but is not package query and has
// no Run entry point.
package notquery // want "must be package query" "no top-level Run or EvaluateQuery entry function"

import rt "hique/runtime"

func Helper(t *rt.Table) {
	rt.StartPage(t)
	rt.EndPage(t)
}
