// A malformed generated query unit: extra import, negative constant
// column index, unbalanced page lifecycle, and a direct panic.
package query

import (
	rt "hique/runtime"

	"hique/internal/storage" // want "generated unit may only import"
)

func Run(t *rt.Table) {
	rt.StartPage(t)
	rt.PutInt64(t, 0, 0, rt.Int64At(t, 0, -1)) // want "negative constant column index -1"
	rt.EndPage(t)
}

func spill(t *rt.Table) { // want "unbalanced page lifecycle in spill: 1 StartPage vs 0 EndPage"
	rt.StartPage(t)
	storage.NewPooledTable().Release()
	panic("spill failed") // want "must not call panic directly"
}
