// A well-formed generated query unit: package query, runtime-only
// import, top-level Run, balanced page lifecycle, non-negative constant
// column indexes, no direct panic. Clean.
package query

import rt "hique/runtime"

func Run(t *rt.Table) {
	rt.StartPage(t)
	rt.PutInt64(t, 0, 0, rt.Int64At(t, 0, 1))
	rt.EndPage(t)
}
