package arenaowner_test

import (
	"testing"

	"hique/internal/lint/arenaowner"
	"hique/internal/lint/linttest"
)

func TestArenaOwner(t *testing.T) {
	linttest.Run(t, "testdata/owner", "hique/internal/codegen", arenaowner.Analyzer)
}
