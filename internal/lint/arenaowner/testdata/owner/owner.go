// Fixture for the arenaowner analyzer: pooled arena values must be
// released exactly once on every path.
package codegen

import (
	"hique/internal/core"
	"hique/internal/storage"
)

var errNope error

func leak(cond bool) error {
	t := storage.NewPooledTable()
	if cond {
		return errNope // want `pooled arena value "t" may leak on this return path`
	}
	t.Release()
	return nil
}

func double() {
	t := storage.NewPooledTable()
	t.Release()
	t.Release() // want `pooled arena value "t" released twice on this path`
}

func useAfter() int {
	t := storage.NewPooledTable()
	t.Release()
	return t.NumRows() // want `pooled arena value "t" used after Release`
}

// goodDefer covers every exit with one deferred Release. Clean.
func goodDefer() {
	t := storage.NewPooledTable()
	defer t.Release()
	t.AppendRow()
}

func doubleDefer() {
	t := storage.NewPooledTable()
	defer t.Release()
	defer t.Release() // want `pooled arena value "t" released twice by deferred Release`
}

// transferOut hands ownership to the caller. Clean.
func transferOut() *storage.Table {
	t := storage.NewPooledTable()
	return t
}

func reassign() {
	t := storage.NewPooledTable()
	t = storage.NewPooledTable() // want `pooled arena value "t" reassigned while still owned`
	t.Release()
}

func stagedLeak(cond bool) error {
	s := core.Staged{T: nil, Owned: true}
	if cond {
		return errNope // want `pooled arena value "s" may leak on this return path`
	}
	s.Release()
	return nil
}

// borrowed values passed to a callee are the callee's to balance. Clean.
func stage(t *storage.Table) {}

func borrow() {
	t := storage.NewPooledTable()
	stage(t)
}
