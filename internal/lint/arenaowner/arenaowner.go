// Package arenaowner enforces page-arena ownership (DESIGN.md §3): a
// value acquired from the arena — a `storage.NewPooledTable` result or a
// `core.Staged{..., Owned: true}` literal — must be released exactly
// once on every path, including error and early-return paths. The
// analyzer runs a may-state dataflow over the cfgx control-flow graph:
//
//	Owned     — holds arena pages; Release is still due
//	DeferRel  — a `defer x.Release()` covers every exit
//	Released  — Release already ran on this path
//	Escaped   — ownership transferred out (returned, stored, passed)
//
// and reports:
//
//   - leaks: a return path on which an Owned value was neither released,
//     deferred, nor escaped;
//   - double-Release: a Release on a path where the value can only be
//     already-Released;
//   - use-after-Release: any other use on such a path.
//
// Passing the value to a function or capturing it in a closure counts as
// an ownership transfer/borrow (Escaped) — the engine's RunStage-style
// callbacks make callee-side tracking the caller's responsibility, and a
// may-analysis that guessed otherwise would drown the tree in false
// positives. Reassigning the variable while it may still be Owned is a
// leak and reported at the assignment.
package arenaowner

import (
	"go/ast"
	"go/token"
	"go/types"

	"hique/internal/lint/analysis"
	"hique/internal/lint/cfgx"
	"hique/internal/lint/lintutil"
)

const (
	storagePkg = "hique/internal/storage"
	corePkg    = "hique/internal/core"
)

// Analyzer is the arenaowner pass.
var Analyzer = &analysis.Analyzer{
	Name: "arenaowner",
	Doc:  "pooled arena values are released exactly once on every path",
	Run:  run,
}

// state is a bitset of may-facts about one tracked variable.
type state uint8

const (
	owned state = 1 << iota
	deferRel
	released
	escaped
)

type stateMap map[*types.Var]state

func (m stateMap) clone() stateMap {
	c := make(stateMap, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func run(pass *analysis.Pass) error {
	for _, fd := range lintutil.FuncDecls(pass.Files) {
		checkFunc(pass, fd, fd.Body)
	}
	// Function literals get their own independent pass: ownership created
	// inside a closure must still balance inside it.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkFunc(pass, nil, fl.Body)
			}
			return true
		})
	}
	return nil
}

// acquisition reports whether the expression mints a new owned arena
// value: storage.NewPooledTable(...), a call returning a pooled table by
// convention (name ends in "Pooled"), or a core.Staged literal with
// Owned: true.
func acquisition(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if lintutil.PkgFuncCall(info, x, storagePkg, "NewPooledTable") {
			return true
		}
		if f := lintutil.CalleeFunc(info, x); f != nil {
			n := f.Name()
			if len(n) > 6 && n[len(n)-6:] == "Pooled" {
				return true
			}
		}
	case *ast.CompositeLit:
		tv, ok := info.Types[x]
		if !ok || !lintutil.IsTypeFrom(tv.Type, corePkg, "Staged") {
			return false
		}
		for _, el := range x.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if k, ok := kv.Key.(*ast.Ident); ok && k.Name == "Owned" {
				if v, ok := kv.Value.(*ast.Ident); ok && v.Name == "true" {
					return true
				}
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return acquisition(info, x.X)
		}
	}
	return false
}

// releaseRecv returns the variable whose Release method is being called,
// when the receiver is a tracked-shape type (storage.Table or
// core.Staged).
func releaseRecv(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	if !lintutil.IsTypeFrom(tv.Type, storagePkg, "Table") && !lintutil.IsTypeFrom(tv.Type, corePkg, "Staged") {
		return nil
	}
	id := lintutil.RootIdent(sel.X)
	if id == nil {
		return nil
	}
	return lintutil.LocalVar(info, id)
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// Quick scan: does the body acquire anything? (Skip the dataflow for
	// the vast majority of functions.)
	acquires := false
	ast.Inspect(body, func(n ast.Node) bool {
		if acquires {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && fd != nil {
			return false // literals are analyzed separately
		}
		if e, ok := n.(ast.Expr); ok && acquisition(info, e) {
			acquires = true
		}
		return !acquires
	})
	if !acquires {
		return
	}

	g := cfgx.New(body)
	in := make([]stateMap, len(g.Blocks))
	in[g.Entry.Index] = stateMap{}
	work := []*cfgx.Block{g.Entry}
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}

	fname := "func literal"
	if fd != nil {
		fname = fd.Name.Name
	}

	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[b.Index].clone()
		for _, s := range b.Stmts {
			transfer(pass, st, s, report)
		}
		if b.Return {
			var ret *ast.ReturnStmt
			if n := len(b.Stmts); n > 0 {
				ret, _ = b.Stmts[n-1].(*ast.ReturnStmt)
			}
			for v, vs := range st {
				if vs&owned == 0 || vs&(deferRel|escaped) != 0 {
					continue
				}
				if retEscapes(info, ret, v) {
					continue
				}
				pos := token.NoPos
				if ret != nil {
					pos = ret.Pos()
				} else if fd != nil {
					pos = fd.Pos()
				} else {
					pos = body.Pos()
				}
				report(pos, "pooled arena value %q may leak on this return path in %s: Release is unreachable", v.Name(), fname)
			}
		}
		for _, succ := range b.Succs {
			changed := false
			if in[succ.Index] == nil {
				in[succ.Index] = st.clone()
				changed = true
			} else {
				for v, vs := range st {
					if in[succ.Index][v]|vs != in[succ.Index][v] {
						in[succ.Index][v] |= vs
						changed = true
					}
				}
			}
			if changed {
				work = append(work, succ)
			}
		}
	}
}

// transfer applies one statement's effects to the state map.
func transfer(pass *analysis.Pass, st stateMap, s ast.Stmt, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo

	// Defer statements: a deferred x.Release() marks DeferRel; a deferred
	// closure that releases x (or captures x at all) marks it too —
	// conservative, since deferred cleanup is the idiom being encouraged.
	if ds, ok := s.(*ast.DeferStmt); ok {
		if v := releaseRecv(info, ds.Call); v != nil {
			if cur, tracked := st[v]; tracked {
				if cur&deferRel != 0 {
					report(ds.Pos(), "pooled arena value %q released twice by deferred Release calls", v.Name())
				}
				st[v] |= deferRel
			}
		}
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if v := releaseRecv(info, c); v != nil {
						if _, tracked := st[v]; tracked {
							st[v] |= deferRel
						}
					}
				}
				return true
			})
		}
		// Other deferred calls referencing tracked vars borrow them.
		markArgEscapes(info, st, ds.Call)
		return
	}

	// Assignments: acquisitions bind/overwrite; reassigning an Owned var
	// without releasing first is a leak; aliasing escapes ownership.
	if as, ok := s.(*ast.AssignStmt); ok {
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			v := lintutil.LocalVar(info, id)
			if v == nil {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if rhs != nil && acquisition(info, rhs) {
				if cur, tracked := st[v]; tracked && cur&owned != 0 && cur&(released|escaped|deferRel) == 0 {
					report(as.Pos(), "pooled arena value %q reassigned while still owned; the previous pages leak (Release first)", v.Name())
				}
				st[v] = owned
				continue
			}
			if rhs != nil {
				// Aliasing a tracked var: `y := x` — x's ownership moves.
				if rid, ok := ast.Unparen(rhs).(*ast.Ident); ok {
					if rv := lintutil.LocalVar(info, rid); rv != nil {
						if _, tracked := st[rv]; tracked {
							st[rv] |= escaped
						}
					}
				}
			}
			// Plain overwrite of a tracked var with a non-acquisition: if
			// it may still be owned (and not escaped), that's a leak too —
			// but the engine's swap idiom (`out = sorted`) releases first,
			// so only flag when provably unreleased. Keep may-analysis
			// quiet here; the return-path check catches real leaks.
			if _, tracked := st[v]; tracked && rhs != nil && !acquisition(info, rhs) {
				st[v] &^= owned | released
			}
		}
	}

	// Walk the statement for releases, uses, and escapes.
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Closure capture = borrow/transfer: anything it references is
			// no longer solely ours to balance.
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v := lintutil.LocalVar(info, id); v != nil {
						if _, tracked := st[v]; tracked {
							st[v] |= escaped
						}
					}
				}
				return true
			})
			return false
		case *ast.DeferStmt:
			return false // handled above when it is the statement itself
		case *ast.CallExpr:
			if v := releaseRecv(info, x); v != nil {
				if cur, tracked := st[v]; tracked {
					if cur == released {
						report(x.Pos(), "pooled arena value %q released twice on this path", v.Name())
					}
					st[v] = released
					return false
				}
			}
			markArgEscapes(info, st, x)
			// Uses via method calls on a released value.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id := lintutil.RootIdent(sel.X); id != nil {
					if v := lintutil.LocalVar(info, id); v != nil {
						if cur, tracked := st[v]; tracked && cur == released {
							report(x.Pos(), "pooled arena value %q used after Release", v.Name())
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, e := range x.Results {
				if id, ok := ast.Unparen(e).(*ast.Ident); ok {
					if v := lintutil.LocalVar(info, id); v != nil {
						if cur, tracked := st[v]; tracked && cur == released {
							report(x.Pos(), "pooled arena value %q returned after Release", v.Name())
						}
					}
				}
			}
		case *ast.CompositeLit, *ast.IndexExpr:
			// Storing a tracked var into a literal or container escapes it.
			ast.Inspect(n, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v := lintutil.LocalVar(info, id); v != nil {
						if _, tracked := st[v]; tracked {
							st[v] |= escaped
						}
					}
				}
				return true
			})
			return false
		}
		return true
	})
}

// markArgEscapes transfers ownership of tracked vars passed as call
// arguments (the callee or the engine's staging machinery now owns the
// pages or is borrowing them under the caller's lifetime).
func markArgEscapes(info *types.Info, st stateMap, call *ast.CallExpr) {
	for _, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				id, _ = ast.Unparen(ue.X).(*ast.Ident)
			}
		}
		if id == nil {
			continue
		}
		if v := lintutil.LocalVar(info, id); v != nil {
			if cur, tracked := st[v]; tracked {
				if cur == released {
					// passing a released value onward is a use-after-release;
					// reported at the call by the caller walk above.
					continue
				}
				st[v] |= escaped
			}
		}
	}
}

// retEscapes reports whether the return transfers v to the caller.
func retEscapes(info *types.Info, ret *ast.ReturnStmt, v *types.Var) bool {
	if ret == nil {
		return false
	}
	esc := false
	for _, e := range ret.Results {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if lintutil.LocalVar(info, id) == v {
					esc = true
				}
			}
			return !esc
		})
	}
	return esc
}
