package warmescape

import (
	"os"
	"path/filepath"
	"testing"
)

// tempModule writes a one-package module whose function line spans are
// known, so canned -m output can be attributed deterministically.
func tempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module escfix\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package escfix

func Hot() *int {
	x := 42
	return &x
}

func Cold() *int {
	y := 7
	return &y
}
`
	if err := os.WriteFile(filepath.Join(dir, "warm.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestAnalyzeAttributionAndAllowlist(t *testing.T) {
	dir := tempModule(t)
	mOutput := `./warm.go:4:2: moved to heap: x
./warm.go:9:2: moved to heap: y
./warm.go:3:6: can inline Hot
./warm.go:4:2: leaking param: x
`
	cfg := &Config{Warm: []string{"escfix.Hot"}, Packages: []string{"escfix"}}
	findings, err := Analyze(dir, cfg, mOutput)
	if err != nil {
		t.Fatal(err)
	}
	// Only Hot's "moved to heap" counts: Cold is not warm, inline chatter
	// and leaking-param lines are not allocations.
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if findings[0].Func != "escfix.Hot" || findings[0].Msg != "moved to heap: x" {
		t.Fatalf("finding = %+v", findings[0])
	}

	cfg.Allow = []AllowEntry{{Func: "escfix.Hot", Msg: "moved to heap: x", Reason: "int boxed once per statement, amortised"}}
	findings, err = Analyze(dir, cfg, mOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("allowlisted escape still reported: %v", findings)
	}
}

func TestLoadConfigRequiresReason(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ESCAPES_warm.json")
	bad := `{"warm":["p.F"],"packages":["p"],"allow":[{"func":"p.F","msg":"x escapes to heap"}]}`
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(path); err == nil {
		t.Fatal("reason-less allow entry must be rejected")
	}
	good := `{"warm":["p.F"],"packages":["p"],"allow":[{"func":"p.F","msg":"x escapes to heap","reason":"documented"}]}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Warm) != 1 || len(cfg.Allow) != 1 {
		t.Fatalf("config = %+v", cfg)
	}
}

func TestCheckFindsRealEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the compiler")
	}
	dir := tempModule(t)
	cfg := &Config{Warm: []string{"escfix.Hot"}, Packages: []string{"escfix"}}
	findings, err := Check(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Func != "escfix.Hot" {
		t.Fatalf("Check findings = %v, want exactly Hot's moved-to-heap", findings)
	}
}
