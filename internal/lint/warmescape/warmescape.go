// Package warmescape turns the engine's "warm path allocates nothing"
// discipline (DESIGN.md §6, BENCH_serving gate) from a runtime assertion
// into a static one: it parses the compiler's escape-analysis output
// (`go build -gcflags=-m`) for a declared set of warm-path functions and
// fails on any heap escape not present in the committed allowlist
// (ESCAPES_warm.json, living next to BENCH_serving.json so the perf gate
// and the escape gate evolve together).
//
// Allowlist entries match on (function, message) rather than file:line,
// so unrelated edits that shift line numbers do not churn the gate; any
// genuinely new escape in a warm function is a fresh (function, message)
// pair and fails the build until it is either eliminated or explicitly
// admitted with a reason.
package warmescape

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Config is the committed ESCAPES_warm.json schema.
type Config struct {
	// Warm lists the guarded functions as "importpath.(recv).Name" or
	// "importpath.Name"; every heap escape attributed to one of these
	// must be allowlisted.
	Warm []string `json:"warm"`
	// Packages are the import paths built with -gcflags=-m (the warm
	// functions' homes).
	Packages []string `json:"packages"`
	// Allow admits known escapes; Reason is mandatory documentation.
	Allow []AllowEntry `json:"allow"`
}

// AllowEntry admits one (function, message) escape.
type AllowEntry struct {
	Func   string `json:"func"`
	Msg    string `json:"msg"`
	Reason string `json:"reason"`
}

// Finding is one non-allowlisted heap escape in a warm function.
type Finding struct {
	Pos  string // file:line:col from the compiler
	Func string // qualified warm function
	Msg  string // compiler message
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: heap escape in warm function %s: %s", f.Pos, f.Func, f.Msg)
}

// LoadConfig reads ESCAPES_warm.json.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	for _, a := range c.Allow {
		if strings.TrimSpace(a.Reason) == "" {
			return nil, fmt.Errorf("%s: allow entry for %s (%q) has no reason", path, a.Func, a.Msg)
		}
	}
	return &c, nil
}

// escapeRe matches the compiler messages that mean a value moved to the
// heap. "leaking param" lines describe parameters the caller already
// owns and are not allocations on the warm path itself.
var escapeRe = regexp.MustCompile(`(escapes to heap|moved to heap)`)

// lineRe splits one -m diagnostic line.
var lineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// Check runs the compiler with escape analysis over the configured
// packages (in a private GOCACHE so diagnostics are never swallowed by
// a warm build cache) and returns the violations.
func Check(moduleDir string, cfg *Config) ([]Finding, error) {
	if len(cfg.Packages) == 0 {
		return nil, fmt.Errorf("ESCAPES_warm.json lists no packages")
	}
	cacheDir, err := os.MkdirTemp("", "hique-escape-cache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cacheDir)

	args := append([]string{"build", "-gcflags=-m"}, cfg.Packages...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	cmd.Env = append(os.Environ(), "GOCACHE="+cacheDir, "GOFLAGS=")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, truncate(out.String(), 4000))
	}
	return Analyze(moduleDir, cfg, out.String())
}

// Analyze attributes -m output lines to warm functions and filters them
// through the allowlist. Split from Check so tests can feed canned
// compiler output without building anything.
func Analyze(moduleDir string, cfg *Config, mOutput string) ([]Finding, error) {
	warm := map[string]bool{}
	for _, w := range cfg.Warm {
		warm[w] = true
	}
	allowed := map[[2]string]bool{}
	for _, a := range cfg.Allow {
		allowed[[2]string{a.Func, a.Msg}] = true
	}

	funcs, err := indexFuncs(moduleDir, cfg.Packages)
	if err != nil {
		return nil, err
	}

	var findings []Finding
	for _, line := range strings.Split(mOutput, "\n") {
		m := lineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil || !escapeRe.MatchString(m[4]) {
			continue
		}
		file, msg := m[1], m[4]
		lineNo := atoi(m[2])
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleDir, file)
		}
		fn := funcs.at(file, lineNo)
		if fn == "" || !warm[fn] {
			continue
		}
		if allowed[[2]string{fn, msg}] {
			continue
		}
		findings = append(findings, Finding{
			Pos:  fmt.Sprintf("%s:%s:%s", m[1], m[2], m[3]),
			Func: fn,
			Msg:  msg,
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Pos < findings[j].Pos })
	return findings, nil
}

// funcIndex maps file → sorted function spans for line attribution.
type funcIndex map[string][]funcSpan

type funcSpan struct {
	name       string // qualified "importpath.(recv).Name"
	start, end int
}

func (fi funcIndex) at(file string, line int) string {
	for _, sp := range fi[file] {
		if line >= sp.start && line <= sp.end {
			return sp.name
		}
	}
	return ""
}

// indexFuncs parses the configured packages' sources and records every
// function declaration's qualified name and line span.
func indexFuncs(moduleDir string, pkgs []string) (funcIndex, error) {
	type listed struct {
		ImportPath string
		Dir        string
		GoFiles    []string
	}
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	fi := funcIndex{}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listed
		if err := dec.Decode(&p); err != nil {
			return nil, err
		}
		fset := token.NewFileSet()
		for _, g := range p.GoFiles {
			path := filepath.Join(p.Dir, g)
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return nil, err
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fi[path] = append(fi[path], funcSpan{
					name:  QualifiedName(p.ImportPath, fd),
					start: fset.Position(fd.Pos()).Line,
					end:   fset.Position(fd.End()).Line,
				})
			}
		}
	}
	for _, spans := range fi {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	}
	return fi, nil
}

// QualifiedName renders a FuncDecl as "importpath.(recv).Name" (methods)
// or "importpath.Name" (functions), matching the config's Warm entries.
func QualifiedName(importPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return importPath + "." + fd.Name.Name
	}
	recv := ""
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			recv = "*" + id.Name
		}
	case *ast.Ident:
		recv = t.Name
	}
	return fmt.Sprintf("%s.(%s).%s", importPath, recv, fd.Name.Name)
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n... (truncated)"
}
