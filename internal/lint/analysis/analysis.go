// Package analysis is hique's dependency-free counterpart to
// golang.org/x/tools/go/analysis: the minimal Analyzer/Pass/Diagnostic
// contract the hique-vet suite is written against. The engine's
// correctness concentrates into a handful of cross-cutting invariants
// (table-ID lock order, arena ownership, panic containment under writer
// locks, generated-code well-formedness); the analyzers under
// internal/lint machine-check them, and this package is the substrate
// they share. The container builds offline with no module proxy, so the
// framework is reimplemented on the standard library (go/ast, go/types)
// instead of importing x/tools; the surface is deliberately
// API-compatible in spirit so analyzers could be ported to a real
// multichecker by changing only imports.
//
// Suppressions: a diagnostic is suppressed by an explicit, commented
// annotation on the flagged line or the line above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory — a bare allow is itself reported — so every
// suppression in the tree documents why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker: a name (used in diagnostics
// and //lint:allow annotations), a doc string, and the Run function
// applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run analyzes a package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic; the driver applies suppression
	// filtering before surfacing it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The analyzer name
// is attached by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// ObjectOf is TypesInfo.ObjectOf with a nil guard for partial info maps.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.ObjectOf(id)
}

// allowRe matches the suppression annotation. Group 1 is the analyzer
// name, group 2 the (required) reason.
var allowRe = regexp.MustCompile(`^//lint:allow\s+(\S+)\s*(.*)$`)

// Allow records one //lint:allow annotation.
type Allow struct {
	Line     int    // line the annotation appears on
	Analyzer string // analyzer it silences
	Reason   string // free-text justification (empty = malformed)
	Pos      token.Pos
}

// CollectAllows scans a file's comments for //lint:allow annotations.
func CollectAllows(fset *token.FileSet, f *ast.File) []Allow {
	var out []Allow
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			out = append(out, Allow{
				Line:     fset.Position(c.Pos()).Line,
				Analyzer: m[1],
				Reason:   strings.TrimSpace(m[2]),
				Pos:      c.Pos(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// Suppressed reports whether a diagnostic from the named analyzer at the
// given line is covered by an allow on the same line or the line
// directly above (the two placements a reviewer reads together with the
// flagged statement).
func Suppressed(allows []Allow, analyzer string, line int) (Allow, bool) {
	for _, a := range allows {
		if a.Analyzer != analyzer && a.Analyzer != "*" {
			continue
		}
		if a.Line == line || a.Line == line-1 {
			return a, true
		}
	}
	return Allow{}, false
}
