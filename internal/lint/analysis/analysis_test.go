package analysis

import (
	"go/parser"
	"go/token"
	"testing"
)

const allowSrc = `package p

func f() {
	//lint:allow lockorder the fixture explains itself
	g()
	//lint:allow arenaowner
	g()
	h() //lint:allow * wildcard silences every analyzer
}

func g() {}
func h() {}
`

func TestCollectAllows(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows := CollectAllows(fset, f)
	if len(allows) != 3 {
		t.Fatalf("got %d allows, want 3: %+v", len(allows), allows)
	}
	if allows[0].Analyzer != "lockorder" || allows[0].Reason == "" || allows[0].Line != 4 {
		t.Errorf("allow[0] = %+v", allows[0])
	}
	if allows[1].Analyzer != "arenaowner" || allows[1].Reason != "" || allows[1].Line != 6 {
		t.Errorf("allow[1] = %+v (bare allow must have empty reason)", allows[1])
	}
	if allows[2].Analyzer != "*" || allows[2].Line != 8 {
		t.Errorf("allow[2] = %+v", allows[2])
	}
}

func TestSuppressed(t *testing.T) {
	allows := []Allow{
		{Line: 4, Analyzer: "lockorder", Reason: "r"},
		{Line: 8, Analyzer: "*", Reason: "r"},
	}
	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"lockorder", 4, true},  // same line
		{"lockorder", 5, true},  // line below the annotation
		{"lockorder", 6, false}, // two lines away
		{"arenaowner", 5, false},
		{"containment", 8, true}, // wildcard matches any analyzer
		{"genwf", 9, true},
	}
	for _, c := range cases {
		if _, got := Suppressed(allows, c.analyzer, c.line); got != c.want {
			t.Errorf("Suppressed(%s, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}
