// Package containment enforces the panic-containment invariant from
// PR 5 (DESIGN.md §4.5): any code that mutates table/catalog state while
// holding a writer lock must run under a containPanic-style recover
// frame ordered so that a panic in the mutation is converted to
// *PanicError BEFORE the lock releases — a contained panic can never
// leak a table lock.
//
// For each function the analyzer finds writer-lock tokens (`e.Lock()` on
// a catalog.TableEntry, or the unlock closure bound from a
// `lockTables(names, true)` call) and checks one of two shapes:
//
//   - defer-released (shape A): the token is released by a defer (direct
//     `defer e.Unlock()`, `defer unlock()`, or a deferred closure that
//     calls the unlock). Then the function must also defer a recover
//     frame, and LIFO order must run the recover BEFORE the unlock: the
//     unlock defer has to be registered first. applyLocked (exec.go) is
//     the canonical instance.
//
//   - manually released (shape B): the token is released by a plain call
//     on some path. A CFG dataflow tracks where the token is held; every
//     call made while it is held must be panic-trivial (a well-known
//     accessor), itself contained (defers a recover frame), or a
//     containing releaser — a package function that takes the entry,
//     defers the unlock, and defers the recover frame (the applyLocked
//     hand-off), which also ends the region.
//
// Reader locks are out of scope here (no mutation); lockorder owns their
// ordering and leak detection.
package containment

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hique/internal/lint/analysis"
	"hique/internal/lint/cfgx"
	"hique/internal/lint/lintutil"
)

const catalogPkg = "hique/internal/catalog"

// Analyzer is the containment pass.
var Analyzer = &analysis.Analyzer{
	Name: "containment",
	Doc:  "writer-lock mutations must be dominated by a containPanic-style recover frame",
	Run:  run,
}

// trivialSafe lists callee names that cannot panic in a way the engine
// cares about inside a lock region: pure accessors, error formatting,
// time, and metrics. Matched by bare name; keep this list boring and
// auditable.
var trivialSafe = map[string]bool{
	// catalog/table accessors
	"Lookup": true, "Names": true, "Version": true, "TableVersion": true,
	"StampFor": true, "BumpTableVersion": true, "ID": true, "NumRows": true,
	"Schema": true, "Name": true, "Index": true, "IndexColumns": true,
	"Pooled": true, "Column": true, "NumColumns": true, "Kind": true,
	// lock traffic itself
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	// error/format/time/metrics
	"Error": true, "Errorf": true, "New": true, "Sprintf": true, "Sprint": true,
	"Since": true, "Now": true, "Observe": true, "Add": true, "Store": true,
	"Load": true, "len": true, "cap": true, "append": true, "delete": true,
	"make": true, "copy": true, "LastLSN": true,
	// db-local bookkeeping that only flips map entries under their own mutex
	"markStale": true, "anyStale": true,
}

func run(pass *analysis.Pass) error {
	contained, releasers := classifyFuncs(pass)
	for _, fd := range lintutil.FuncDecls(pass.Files) {
		checkFunc(pass, fd, contained, releasers)
	}
	return nil
}

// classifyFuncs partitions package-local functions into:
//   - contained: body directly defers a recover frame;
//   - releasers: contained AND the body defer-releases an entry lock —
//     the applyLocked-style containing releaser a caller may hand a held
//     lock to.
func classifyFuncs(pass *analysis.Pass) (contained, releasers map[*types.Func]bool) {
	contained = map[*types.Func]bool{}
	releasers = map[*types.Func]bool{}
	for _, fd := range lintutil.FuncDecls(pass.Files) {
		obj, _ := pass.ObjectOf(fd.Name).(*types.Func)
		if obj == nil {
			continue
		}
		if !lintutil.HasDeferredRecover(fd.Body) {
			continue
		}
		contained[obj] = true
		if hasDeferredUnlock(pass.TypesInfo, fd.Body) {
			releasers[obj] = true
		}
	}
	return contained, releasers
}

// hasDeferredUnlock reports whether the body defers an entry
// Unlock/RUnlock, defers a func-typed value named like an unlock
// closure, or defers a closure that calls either.
func hasDeferredUnlock(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isUnlockCall(info, ds.Call) {
			found = true
		}
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isUnlockCall(info, c) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isUnlockCall matches `e.Unlock()` / `e.RUnlock()` on a TableEntry and
// invocations of unlock-named function values.
func isUnlockCall(info *types.Info, call *ast.CallExpr) bool {
	if _, m, ok := lintutil.MethodCall(info, call, catalogPkg, "TableEntry"); ok && (m == "Unlock" || m == "RUnlock") {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "unlock") {
		if v := lintutil.LocalVar(info, id); v != nil {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				return true
			}
		}
	}
	return false
}

// writerLockTablesCall reports whether the call is lockTables with a
// writer flag that is true or non-literal (conservative).
func writerLockTablesCall(info *types.Info, call *ast.CallExpr) bool {
	f := lintutil.CalleeFunc(info, call)
	if f == nil || f.Name() != "lockTables" {
		return false
	}
	if len(call.Args) < 2 {
		return true
	}
	if id, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok {
		switch id.Name {
		case "true":
			return true
		case "false":
			return false
		}
	}
	return true // non-constant write flag: assume it can be a writer
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, contained, releasers map[*types.Func]bool) {
	info := pass.TypesInfo

	// Writer tokens: receiver vars of e.Lock(), unlock vars bound from
	// writer lockTables calls.
	hasWriter := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, m, ok := lintutil.MethodCall(info, call, catalogPkg, "TableEntry"); ok && m == "Lock" {
			hasWriter = true
		}
		if writerLockTablesCall(info, call) {
			hasWriter = true
		}
		return !hasWriter
	})
	if !hasWriter {
		return
	}

	deferCovered := hasDeferredUnlock(info, fd.Body)
	hasRecover := lintutil.HasDeferredRecover(fd.Body)

	if deferCovered {
		// Shape A: defer-released. The recover frame must exist and run
		// before the unlock on unwind.
		if !hasRecover {
			pass.Reportf(fd.Name.Pos(), "writer lock in %s is released by defer but no containPanic-style recover frame is registered; an uncontained panic unwinds through the unlock and escapes with the table state half-mutated", fd.Name.Name)
			return
		}
		checkDeferOrder(pass, fd)
		return
	}

	// Shape B: manually released. CFG dataflow over held tokens.
	checkManualFlow(pass, fd, contained, releasers)
}

// checkDeferOrder verifies LIFO ordering: the unlock defer must be
// registered BEFORE the recover-frame defer, so the recover runs first
// on unwind and converts the panic before the lock releases.
func checkDeferOrder(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	unlockPos := token.NoPos
	recoverPos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isRecoverDefer(ds) {
			if recoverPos == token.NoPos {
				recoverPos = ds.Pos()
			}
			return false
		}
		releases := isUnlockCall(info, ds.Call)
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok && !releases {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isUnlockCall(info, c) {
					releases = true
				}
				return !releases
			})
		}
		if releases && unlockPos == token.NoPos {
			unlockPos = ds.Pos()
		}
		return false
	})
	if unlockPos != token.NoPos && recoverPos != token.NoPos && recoverPos < unlockPos {
		pass.Reportf(unlockPos, "unlock defer registered after the recover frame; LIFO order runs the unlock before containPanic, releasing the lock with the panic still in flight (register the unlock defer first)")
	}
}

func isRecoverDefer(ds *ast.DeferStmt) bool {
	switch fn := ast.Unparen(ds.Call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "containPanic" || fn.Name == "recoverToErr"
	case *ast.SelectorExpr:
		return fn.Sel.Name == "containPanic" || fn.Sel.Name == "recoverToErr"
	case *ast.FuncLit:
		calls := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "recover" {
					calls = true
				}
			}
			return !calls
		})
		return calls
	}
	return false
}

// heldSet is the dataflow fact: writer tokens that may be held.
type heldSet map[*types.Var]bool

func (s heldSet) clone() heldSet {
	c := make(heldSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// checkManualFlow tracks manually-released writer tokens across the CFG
// and flags unsafe calls made while one is held.
func checkManualFlow(pass *analysis.Pass, fd *ast.FuncDecl, contained, releasers map[*types.Func]bool) {
	g := cfgx.New(fd.Body)
	in := make([]heldSet, len(g.Blocks))
	in[g.Entry.Index] = heldSet{}
	work := []*cfgx.Block{g.Entry}
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[b.Index].clone()
		for _, s := range b.Stmts {
			manualTransfer(pass, st, s, contained, releasers, fd, report)
		}
		for _, succ := range b.Succs {
			changed := false
			if in[succ.Index] == nil {
				in[succ.Index] = st.clone()
				changed = true
			} else {
				for v := range st {
					if !in[succ.Index][v] {
						in[succ.Index][v] = true
						changed = true
					}
				}
			}
			if changed {
				work = append(work, succ)
			}
		}
	}
}

// manualTransfer applies one statement: acquisitions add tokens,
// releases and releaser hand-offs remove them, and any other non-trivial
// call while a token is held is reported.
func manualTransfer(pass *analysis.Pass, st heldSet, s ast.Stmt, contained, releasers map[*types.Func]bool, fd *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	info := pass.TypesInfo
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Entry lock traffic.
		if recv, m, ok := lintutil.MethodCall(info, call, catalogPkg, "TableEntry"); ok {
			var v *types.Var
			if id := lintutil.RootIdent(recv); id != nil {
				v = lintutil.LocalVar(info, id)
			}
			switch m {
			case "Lock":
				if v != nil {
					st[v] = true
				}
			case "Unlock":
				if v != nil {
					delete(st, v)
				}
			}
			return true
		}
		// Unlock-closure invocation ends its region; conservatively clear
		// all tokens (the closure releases what lockTables acquired).
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v := lintutil.LocalVar(info, id); v != nil {
				if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
					if strings.Contains(strings.ToLower(id.Name), "unlock") {
						for t := range st {
							delete(st, t)
						}
					} else {
						delete(st, v)
					}
					return true
				}
			}
		}
		if len(st) == 0 {
			return true
		}
		// Releaser hand-off: the callee takes over unlock + containment
		// for the entry it receives; drop tokens passed to it.
		if f := lintutil.CalleeFunc(info, call); f != nil {
			if releasers[f] {
				for _, arg := range call.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if v := lintutil.LocalVar(info, id); v != nil {
							delete(st, v)
						}
					}
				}
				return true
			}
			if contained[f] {
				return true
			}
		}
		name := calleeName(info, call)
		if name == "" || trivialSafe[name] {
			return true
		}
		report(call.Pos(), "call to %s while %s holds a manually released writer lock, with no panic containment; a panic here skips the unlock and wedges the table (extract a helper with defer unlock + defer containPanic)", name, fd.Name.Name)
		return true
	})
	// Token binding for writer lockTables results.
	if as, ok := s.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && writerLockTablesCall(info, call) {
			if len(as.Lhs) > 0 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if v := lintutil.LocalVar(info, id); v != nil {
						st[v] = true
					}
				}
			}
		}
	}
}

// calleeName extracts a bare callee name for trivial-safe matching;
// conversions come back empty.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := info.ObjectOf(fn).(*types.TypeName); ok {
			return "" // conversion
		}
		return fn.Name
	case *ast.SelectorExpr:
		if _, ok := info.ObjectOf(fn.Sel).(*types.TypeName); ok {
			return ""
		}
		return fn.Sel.Name
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.InterfaceType, *ast.StructType, *ast.FuncType:
		return ""
	}
	return ""
}
