package containment_test

import (
	"testing"

	"hique/internal/lint/containment"
	"hique/internal/lint/linttest"
)

func TestContainment(t *testing.T) {
	linttest.Run(t, "testdata/contain", "hique", containment.Analyzer)
}
