// Fixture for the containment analyzer: writer-lock mutations must run
// under a containPanic-style recover frame registered AFTER the unlock
// defer (LIFO runs the recover first on unwind).
package hique

import "hique/internal/catalog"

func containPanic(err *error) {}

func mutate() {}

func grow() int { return 0 }

// applyLockedGood is the canonical shape A: unlock defer first, recover
// frame second. Clean.
func applyLockedGood(e *catalog.TableEntry) (err error) {
	e.Lock()
	defer e.Unlock()
	defer containPanic(&err)
	mutate()
	return nil
}

func badOrder(e *catalog.TableEntry) (err error) {
	e.Lock()
	defer containPanic(&err)
	defer e.Unlock() // want "unlock defer registered after the recover frame"
	mutate()
	return nil
}

func noRecover(e *catalog.TableEntry) { // want "no containPanic-style recover frame"
	e.Lock()
	defer e.Unlock()
	mutate()
}

func manualBad(e *catalog.TableEntry) {
	e.Lock()
	mutate() // want "call to mutate while manualBad holds a manually released writer lock"
	e.Unlock()
}

// manualTrivial only calls panic-trivial accessors inside the region.
// Clean.
func manualTrivial(e *catalog.TableEntry) int {
	e.Lock()
	n := e.NumRows()
	e.Unlock()
	return n
}

// finishLocked is a containing releaser: it defers the unlock of the
// entry it receives and defers the recover frame; callers may hand it a
// held lock.
func finishLocked(e *catalog.TableEntry) (err error) {
	defer e.Unlock()
	defer containPanic(&err)
	mutate()
	return nil
}

// lockAndFinish hands the held lock to the containing releaser. Clean.
func lockAndFinish(e *catalog.TableEntry) error {
	e.Lock()
	return finishLocked(e)
}

func lockTables(names []string, write bool) func() { return func() {} }

func planBad(names []string) {
	unlock := lockTables(names, true)
	mutate() // want "call to mutate while planBad holds a manually released writer lock"
	unlock()
}

// readOnly takes only reader locks; containment does not apply. Clean.
func readOnly(names []string) int {
	unlock := lockTables(names, false)
	n := grow()
	unlock()
	return n
}

// readerEntry uses an entry reader lock; out of scope too. Clean.
func readerEntry(e *catalog.TableEntry) int {
	e.RLock()
	n := grow()
	e.RUnlock()
	return n
}
