package driver_test

import (
	"strings"
	"testing"

	"hique/internal/lint/driver"
	"hique/internal/lint/linttest"
	"hique/internal/lint/lockorder"
)

// TestSuppression pins the //lint:allow contract end to end: the
// reasoned allow removes its diagnostic, the bare allow suppresses but
// is reported itself, and the unannotated violation survives.
func TestSuppression(t *testing.T) {
	diags := linttest.Analyze(t, "testdata/suppress", "hique", lockorder.Analyzer)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%v", len(diags), diags)
	}
	var gotBare, gotViolation bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "lintallow" && strings.Contains(d.Message, "without a reason"):
			gotBare = true
		case d.Analyzer == "lockorder" && strings.Contains(d.Message, "second table lock acquired") && d.Position.Line == 18:
			gotViolation = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotBare || !gotViolation {
		t.Fatalf("missing expected diagnostics (bare=%v violation=%v):\n%v", gotBare, gotViolation, diags)
	}
}

func TestByName(t *testing.T) {
	all, err := driver.ByName("")
	if err != nil || len(all) != 4 {
		t.Fatalf("ByName(\"\") = %d analyzers, %v; want 4", len(all), err)
	}
	sel, err := driver.ByName("lockorder,genwf")
	if err != nil || len(sel) != 2 || sel[0].Name != "lockorder" || sel[1].Name != "genwf" {
		t.Fatalf("ByName selection = %v, %v", sel, err)
	}
	if _, err := driver.ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}

// TestLoadRepo smoke-tests the standalone loader against this package
// itself: export data comes from `go list -export`, so the type-check
// must resolve real imports.
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	res, err := driver.Load("", []string{"hique/internal/lint/driver"})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, r := range res {
		if r.ImportPath == "hique/internal/lint/driver" {
			found = true
			if len(r.TypeErrors) > 0 {
				t.Fatalf("type errors: %v", r.TypeErrors)
			}
			if r.Pkg == nil || len(r.Files) == 0 {
				t.Fatal("loader returned an empty package")
			}
		}
	}
	if !found {
		t.Fatal("driver package not loaded")
	}
}
