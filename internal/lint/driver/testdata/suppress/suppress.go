// Fixture for //lint:allow handling: a reasoned allow silences the
// diagnostic, a bare allow still silences but is itself reported, and
// an unsuppressed violation surfaces normally.
package hique

import "hique/internal/catalog"

func suppressedPair(a, b *catalog.TableEntry) {
	a.Lock()
	//lint:allow lockorder fixture documents an intentional out-of-order acquisition
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func unsuppressedPair(a, b *catalog.TableEntry) {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func bareAllowPair(a, b *catalog.TableEntry) {
	a.Lock()
	//lint:allow lockorder
	b.Lock()
	b.Unlock()
	a.Unlock()
}
