// Package driver loads, type-checks, and analyzes hique packages for the
// hique-vet suite. The container builds offline with no module proxy, so
// instead of golang.org/x/tools/go/packages it loads syntax with go/parser
// and resolves imports through the gc export-data files that `go list
// -export` (standalone mode) or go vet's vet.cfg (vettool mode) already
// provide — the same data a real multichecker would read.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"hique/internal/lint/analysis"
	"hique/internal/lint/arenaowner"
	"hique/internal/lint/containment"
	"hique/internal/lint/genwf"
	"hique/internal/lint/lockorder"
)

// Analyzers returns the hique-vet registry in diagnostic order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		lockorder.Analyzer,
		arenaowner.Analyzer,
		containment.Analyzer,
		genwf.Analyzer,
	}
}

// ByName resolves a comma-separated analyzer selection ("" = all).
func ByName(sel string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	if sel == "" {
		return all, nil
	}
	idx := map[string]*analysis.Analyzer{}
	for _, a := range all {
		idx[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(sel, ",") {
		a := idx[strings.TrimSpace(name)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Diagnostic is a positioned, analyzer-attributed finding ready to print.
type Diagnostic struct {
	Position token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// RunAnalyzers applies the analyzers to one type-checked package and
// returns the diagnostics that survive //lint:allow suppression, plus
// diagnostics for malformed (reason-less) allows.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) []Diagnostic {
	allowsByFile := map[*token.File][]analysis.Allow{}
	var out []Diagnostic
	for _, f := range files {
		allows := analysis.CollectAllows(fset, f)
		if tf := fset.File(f.Pos()); tf != nil {
			allowsByFile[tf] = allows
		}
		for _, a := range allows {
			if a.Reason == "" {
				out = append(out, Diagnostic{
					Position: fset.Position(a.Pos),
					Message:  "//lint:allow without a reason; every suppression must document why the invariant does not apply",
					Analyzer: "lintallow",
				})
			}
		}
	}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			if tf := fset.File(d.Pos); tf != nil {
				if _, ok := analysis.Suppressed(allowsByFile[tf], name, pos.Line); ok {
					return
				}
			}
			out = append(out, Diagnostic{Position: pos, Message: d.Message, Analyzer: name})
		}
		if err := a.Run(pass); err != nil {
			out = append(out, Diagnostic{Message: fmt.Sprintf("analyzer error: %v", err), Analyzer: a.Name})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// TypeCheck parses the named files and type-checks them against gc
// export data resolved through lookup (import path → export file).
// Type errors are collected, not fatal: analyzers run best-effort on
// partial information, mirroring go vet's SucceedOnTypecheckFailure
// handling.
func TypeCheck(fset *token.FileSet, importPath string, filenames []string, lookup func(path string) (io.ReadCloser, error)) ([]*ast.File, *types.Package, *types.Info, []error) {
	var files []*ast.File
	var errs []error
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		files = append(files, f)
	}
	pkg, info, cerrs := checkFiles(fset, importPath, files, lookup)
	return files, pkg, info, append(errs, cerrs...)
}

// TypeCheckSource type-checks a single in-memory source file — the shape
// enginetest needs for codegen.EmitSource output, which never touches
// disk before execution.
func TypeCheckSource(fset *token.FileSet, importPath, filename, src string, lookup func(path string) (io.ReadCloser, error)) ([]*ast.File, *types.Package, *types.Info, []error) {
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, nil, nil, []error{err}
	}
	files := []*ast.File{f}
	pkg, info, errs := checkFiles(fset, importPath, files, lookup)
	return files, pkg, info, errs
}

func checkFiles(fset *token.FileSet, importPath string, files []*ast.File, lookup func(path string) (io.ReadCloser, error)) (*types.Package, *types.Info, []error) {
	var errs []error
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(importPath, fset, files, info)
	return pkg, info, errs
}

// ExportLookup runs `go list -export -deps` over the patterns and returns
// an import-path → export-data lookup for TypeCheck/TypeCheckSource. It
// lets callers type-check sources that exist only in memory (generated
// query units) against the real compiled ABI packages.
func ExportLookup(dir string, patterns ...string) (func(path string) (io.ReadCloser, error), error) {
	args := append([]string{"list", "-e", "-export", "-json=ImportPath,Export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f := exports[path]
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}, nil
}

// listedPackage is the subset of `go list -export -json` output the
// standalone loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	DepOnly    bool
}

// LoadResult is one target package ready for analysis.
type LoadResult struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	TypeErrors []error
}

// Load runs `go list -export -deps` over the patterns and type-checks
// every in-module, non-dependency-only package.
func Load(dir string, patterns []string) ([]*LoadResult, error) {
	args := append([]string{"list", "-e", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module,DepOnly", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		cp := p
		targets = append(targets, &cp)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f := exports[path]
		if f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	var out []*LoadResult
	for _, p := range targets {
		fset := token.NewFileSet()
		var names []string
		for _, g := range p.GoFiles {
			names = append(names, filepath.Join(p.Dir, g))
		}
		files, pkg, info, errs := TypeCheck(fset, p.ImportPath, names, lookup)
		out = append(out, &LoadResult{
			ImportPath: p.ImportPath,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
			TypeErrors: errs,
		})
	}
	return out, nil
}
