// Package lintutil holds the type- and object-resolution helpers the
// hique-vet analyzers share: matching calls against the engine's
// well-known types (catalog.TableEntry, storage.Table, core.Staged) by
// package-path suffix, so the same analyzers run unchanged over the real
// tree and over analysistest fixtures that stub those packages under
// identical import paths.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// PkgPathIs reports whether a package path denotes the named hique
// package: an exact match, or the canonical "hique/"-rooted suffix (so
// fixture stubs and vendored copies still match).
func PkgPathIs(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// NamedType returns the named type (after pointer indirection) of t, or
// nil.
func NamedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// IsTypeFrom reports whether t (or *t) is the named type pkgPath.name,
// with pkgPath matched per PkgPathIs.
func IsTypeFrom(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && PkgPathIs(n.Obj().Pkg().Path(), pkgPath)
}

// MethodCall resolves a call expression to (receiver expr, method name)
// when the callee is a method on a value whose type matches
// pkgPath.typeName. Returns ok=false otherwise.
func MethodCall(info *types.Info, call *ast.CallExpr, pkgPath, typeName string) (recv ast.Expr, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return nil, "", false
	}
	tv, okTV := info.Types[sel.X]
	if !okTV {
		return nil, "", false
	}
	if !IsTypeFrom(tv.Type, pkgPath, typeName) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// CalleeFunc resolves a call's static callee, following selector or
// plain identifier callees. Returns nil for calls through function
// values, type conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.ObjectOf(id).(*types.Func)
	return f
}

// PkgFuncCall reports whether call statically invokes the function (or
// method) named name declared in a package matching pkgPath.
func PkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := CalleeFunc(info, call)
	return f != nil && f.Name() == name && f.Pkg() != nil && PkgPathIs(f.Pkg().Path(), pkgPath)
}

// RootIdent walks selectors/indexes/parens down to the base identifier
// of an expression (e.g. db.cat → db, entries[i] → entries). Returns nil
// when the base is not an identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// LocalVar returns the *types.Var an identifier denotes when it is a
// function-local variable (not a field, package-level var, or constant).
func LocalVar(info *types.Info, id *ast.Ident) *types.Var {
	v, ok := info.ObjectOf(id).(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == nil || v.Pkg() == nil {
		return nil
	}
	// Package-scope variables have the package scope as parent.
	if v.Parent() == v.Pkg().Scope() {
		return nil
	}
	return v
}

// FuncDecls yields every function declaration with a body in the files.
func FuncDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// HasDeferredRecover reports whether the function body directly defers a
// containPanic-style frame: `defer containPanic(&err)` (any function
// named containPanic / recoverToErr) or a deferred func literal whose
// body calls recover().
func HasDeferredRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		// Do not descend into nested function literals except via defers.
		if ds, ok := n.(*ast.DeferStmt); ok {
			if isRecoverFrame(ds.Call) {
				found = true
			}
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return true
	})
	return found
}

func isRecoverFrame(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn.Name == "containPanic" || fn.Name == "recoverToErr" {
			return true
		}
	case *ast.SelectorExpr:
		if fn.Sel.Name == "containPanic" || fn.Sel.Name == "recoverToErr" {
			return true
		}
	case *ast.FuncLit:
		calls := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "recover" {
					calls = true
				}
			}
			return !calls
		})
		return calls
	}
	return false
}
