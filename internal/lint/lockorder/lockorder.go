// Package lockorder enforces the engine's single global table-lock
// acquisition order (DESIGN.md §2/§4.5: catalog.TableEntry locks are
// taken in ascending TableEntry.ID order, established in PR 5).
//
// The analyzer reports:
//
//  1. direct acquisitions of table-entry locks outside the hique serving
//     layer (only the root package may touch entry locks; everything else
//     must go through the DB API);
//  2. a second table lock acquired while one may already be held, unless
//     the function establishes ascending-ID order with an explicit
//     `a.ID() < b.ID()` guard (the warm fast path's swap) or is the
//     sanctioned `lockTables` routine;
//  3. calls to lock-acquiring functions (lockTables/rlockTables or any
//     package function that itself takes entry locks) while an entry
//     lock is held — the inter-procedural deadlock shape;
//  4. entry locks acquired inside a loop without either releasing within
//     the iteration or sorting by table ID first (lockTables' sort is
//     what makes its loop legal);
//  5. lock-leak paths: an acquisition whose release is unreachable on
//     some path to return (unless the unlock escapes to the caller —
//     ownership transfer, the planLocked contract).
//
// False positives are suppressed with `//lint:allow lockorder <reason>`.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hique/internal/lint/analysis"
	"hique/internal/lint/cfgx"
	"hique/internal/lint/lintutil"
)

const catalogPkg = "hique/internal/catalog"

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "table-entry locks follow the global ascending-ID acquisition order",
	Run:  run,
}

// entryAcquire describes one direct TableEntry Lock/RLock call site.
type entryAcquire struct {
	call *ast.CallExpr
	recv *types.Var // receiver root variable, nil when unidentifiable
	wr   bool       // writer lock
}

func run(pass *analysis.Pass) error {
	acquirers := acquirerSet(pass)
	rootPkg := isServingLayer(pass.Pkg)
	for _, fd := range lintutil.FuncDecls(pass.Files) {
		checkFunc(pass, fd, acquirers, rootPkg)
	}
	return nil
}

// isServingLayer reports whether the package is allowed to touch entry
// locks directly: the module root (package hique) owns the serving
// paths; internal/* and cmd/* must route through the DB API. The
// catalog package itself (lock methods' home) is exempt too.
func isServingLayer(pkg *types.Package) bool {
	p := pkg.Path()
	return p == "hique" || lintutil.PkgPathIs(p, catalogPkg) ||
		strings.HasSuffix(p, ".test") // synthesized test main packages
}

// acquirerSet computes the package-local functions that acquire table
// locks (directly or through lockTables) — calling one of these while
// holding an entry lock risks an out-of-order second acquisition.
func acquirerSet(pass *analysis.Pass) map[*types.Func]bool {
	set := map[*types.Func]bool{}
	for _, fd := range lintutil.FuncDecls(pass.Files) {
		obj, _ := pass.ObjectOf(fd.Name).(*types.Func)
		if obj == nil {
			continue
		}
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, m, ok := lintutil.MethodCall(pass.TypesInfo, call, catalogPkg, "TableEntry"); ok && (m == "Lock" || m == "RLock") {
				found = true
			}
			if isLockTablesCall(pass.TypesInfo, call) {
				found = true
			}
			return !found
		})
		if found {
			set[obj] = true
		}
	}
	return set
}

func isLockTablesCall(info *types.Info, call *ast.CallExpr) bool {
	f := lintutil.CalleeFunc(info, call)
	return f != nil && (f.Name() == "lockTables" || f.Name() == "rlockTables")
}

// isLockTablesDecl reports whether fd is the sanctioned ordered-loop
// acquirer itself.
func isLockTablesDecl(fd *ast.FuncDecl) bool {
	return fd.Name.Name == "lockTables" || fd.Name.Name == "rlockTables"
}

// hasIDGuard detects the explicit ascending-ID order guard: an if (or
// swap) comparing two TableEntry.ID() calls with < or >.
func hasIDGuard(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.LSS && be.Op != token.GTR) {
			return true
		}
		if isIDCall(pass, be.X) && isIDCall(pass, be.Y) {
			found = true
		}
		return !found
	})
	return found
}

func isIDCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	_, m, ok := lintutil.MethodCall(pass.TypesInfo, call, catalogPkg, "TableEntry")
	if ok && m == "ID" {
		return true
	}
	// Comparing a Less-method style `s.entries[i].ID() < s.entries[j].ID()`
	// resolves through the same path; also accept a plain selector .ID
	// field on an entry-shaped struct (fixture freedom).
	return false
}

// hasSortBefore reports a sort.* / slices.Sort* call anywhere in the
// body before pos — the ordering step that legalises a lock loop.
func hasSortBefore(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		f := lintutil.CalleeFunc(pass.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if (f.Pkg().Path() == "sort" || f.Pkg().Path() == "slices") &&
			(strings.HasPrefix(f.Name(), "Sort") || strings.HasPrefix(f.Name(), "Slice")) {
			found = true
		}
		return !found
	})
	return found
}

// lockState is the dataflow fact: the set of holder tokens that may be
// held. A token is the receiver var of a direct acquisition or the
// unlock-func var bound from a lockTables call.
type lockState map[*types.Var]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s lockState) equal(o lockState) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, acquirers map[*types.Func]bool, rootPkg bool) {
	info := pass.TypesInfo
	// Fast scan: any lock-related activity at all?
	var acquires []entryAcquire
	anyLockTables := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, m, ok := lintutil.MethodCall(info, call, catalogPkg, "TableEntry"); ok && (m == "Lock" || m == "RLock") {
			var v *types.Var
			if id := lintutil.RootIdent(recv); id != nil {
				v = lintutil.LocalVar(info, id)
			}
			acquires = append(acquires, entryAcquire{call: call, recv: v, wr: m == "Lock"})
		}
		if isLockTablesCall(info, call) {
			anyLockTables = true
		}
		return true
	})
	if len(acquires) == 0 && !anyLockTables {
		return
	}

	// Rule 1: entry locks belong to the serving layer.
	if !rootPkg {
		for _, a := range acquires {
			pass.Reportf(a.call.Pos(), "table-entry lock acquired outside the hique serving layer; route through the DB API (lockTables)")
		}
	}

	sanctioned := isLockTablesDecl(fd)
	idGuard := hasIDGuard(pass, fd.Body)

	// Rule 4: acquisition loops.
	checkLoops(pass, fd, sanctioned)

	// Rules 2, 3, 5: path-sensitive held-set tracking.
	checkHeldFlow(pass, fd, acquirers, sanctioned, idGuard)
}

// checkLoops flags entry-lock acquisitions inside a loop body unless the
// same loop body releases them (per-iteration critical section) or the
// function is lockTables with a preceding sort (the ordered batch
// acquisition).
func checkLoops(pass *analysis.Pass, fd *ast.FuncDecl, sanctioned bool) {
	info := pass.TypesInfo
	var loops []ast.Stmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
		}
		return true
	})
	for _, loop := range loops {
		var body *ast.BlockStmt
		switch l := loop.(type) {
		case *ast.ForStmt:
			body = l.Body
		case *ast.RangeStmt:
			body = l.Body
		}
		var acq []*ast.CallExpr
		releases := false
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, m, ok := lintutil.MethodCall(info, call, catalogPkg, "TableEntry"); ok {
				switch m {
				case "Lock", "RLock":
					acq = append(acq, call)
				case "Unlock", "RUnlock":
					releases = true
				}
			}
			return true
		})
		if len(acq) == 0 || releases {
			continue
		}
		if sanctioned && hasSortBefore(pass, fd.Body, loop.Pos()) {
			continue
		}
		for _, call := range acq {
			if sanctioned {
				pass.Reportf(call.Pos(), "lockTables acquires entry locks in a loop without sorting by table ID first; the global acquisition order is broken")
			} else {
				pass.Reportf(call.Pos(), "table locks acquired in a loop and held across iterations without table-ID ordering; route through lockTables")
			}
		}
	}
}

// checkHeldFlow runs the may-hold dataflow over the CFG: second
// acquisitions without an ID guard, acquirer calls while held, and
// leak-at-exit paths.
func checkHeldFlow(pass *analysis.Pass, fd *ast.FuncDecl, acquirers map[*types.Func]bool, sanctioned, idGuard bool) {
	info := pass.TypesInfo
	g := cfgx.New(fd.Body)

	// Deferred releases and transfers: a deferred e.Unlock()/unlock()
	// covers every exit; collect the tokens they release.
	deferred := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for _, v := range releaseTargets(info, ds.Call) {
			deferred[v] = true
		}
		if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					for _, v := range releaseTargets(info, c) {
						deferred[v] = true
					}
				}
				return true
			})
		}
		return true
	})

	in := make([]lockState, len(g.Blocks))
	in[g.Entry.Index] = lockState{}
	work := []*cfgx.Block{g.Entry}
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[b.Index].clone()
		for _, s := range b.Stmts {
			st = transfer(pass, st, s, acquirers, sanctioned, idGuard, deferred, report)
		}
		if b.Return && !sanctioned {
			// Leak check: tokens still held that are neither deferred nor
			// escaping via this return are stuck. lockTables itself is
			// exempt: it acquires through the sorted entries slice and
			// hands the matching releases to its returned closure, which
			// the per-variable token model cannot see.
			var ret *ast.ReturnStmt
			if n := len(b.Stmts); n > 0 {
				ret, _ = b.Stmts[n-1].(*ast.ReturnStmt)
			}
			for v := range st {
				if deferred[v] || escapesVia(info, ret, v) || escapesFunc(info, fd, v) {
					continue
				}
				pos := fd.Pos()
				if ret != nil {
					pos = ret.Pos()
				}
				report(pos, "table lock (%s) may still be held on this return path: release is unreachable", v.Name())
			}
		}
		for _, succ := range b.Succs {
			merged := st.clone()
			changed := false
			if in[succ.Index] == nil {
				in[succ.Index] = merged
				changed = true
			} else {
				for v := range merged {
					if !in[succ.Index][v] {
						in[succ.Index][v] = true
						changed = true
					}
				}
			}
			if changed {
				work = append(work, succ)
			}
		}
	}
}

// transfer applies one statement to the held-set.
func transfer(pass *analysis.Pass, st lockState, s ast.Stmt, acquirers map[*types.Func]bool, sanctioned, idGuard bool, deferred map[*types.Var]bool, report func(token.Pos, string, ...any)) lockState {
	info := pass.TypesInfo
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // closure bodies run later; not on this path
		}
		if _, ok := n.(*ast.DeferStmt); ok {
			return false // handled via the deferred set
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Direct entry lock traffic.
		if recv, m, ok := lintutil.MethodCall(info, call, catalogPkg, "TableEntry"); ok {
			var v *types.Var
			if id := lintutil.RootIdent(recv); id != nil {
				v = lintutil.LocalVar(info, id)
			}
			switch m {
			case "Lock", "RLock":
				if len(st) > 0 && !sanctioned && !idGuard {
					report(call.Pos(), "second table lock acquired while one may be held, with no a.ID() < b.ID() order guard; route through lockTables")
				}
				if v != nil {
					st[v] = true
				}
			case "Unlock", "RUnlock":
				if v != nil {
					delete(st, v)
				}
			}
			return true
		}
		// lockTables/rlockTables: the unlock binding becomes the token.
		if isLockTablesCall(info, call) {
			if len(st) > 0 {
				report(call.Pos(), "lockTables called while a table lock is already held; the combined acquisition is unordered")
			}
			// The token is bound by the enclosing assignment; handled below.
			return true
		}
		// Calling another acquirer while held.
		if len(st) > 0 {
			if f := lintutil.CalleeFunc(info, call); f != nil && acquirers[f] {
				report(call.Pos(), "call to %s (which acquires table locks) while a table lock is held; possible out-of-order second acquisition", f.Name())
			}
		}
		// Calling a func-typed local releases whatever it guards
		// (unlock()/runlock() closures); drop its token.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v := lintutil.LocalVar(info, id); v != nil {
				if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
					delete(st, v)
					// A bare unlock closure may also release direct tokens it
					// captured; be conservative only for same-named idioms.
					if strings.Contains(strings.ToLower(id.Name), "unlock") {
						for t := range st {
							if _, sig := t.Type().Underlying().(*types.Signature); !sig {
								delete(st, t)
							}
						}
					}
				}
			}
		}
		return true
	})
	// Track unlock bindings: `unlock, locked := db.lockTables(...)`.
	if as, ok := s.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isLockTablesCall(info, call) {
			if len(as.Lhs) > 0 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if v := lintutil.LocalVar(info, id); v != nil {
						st[v] = true
					}
				} else {
					report(as.Pos(), "lockTables result's unlock function is discarded; the table locks can never be released")
				}
			}
		}
	}
	return st
}

// releaseTargets returns the held tokens a call releases: the receiver
// of Unlock/RUnlock, or the func-typed variable being invoked.
func releaseTargets(info *types.Info, call *ast.CallExpr) []*types.Var {
	var out []*types.Var
	if recv, m, ok := lintutil.MethodCall(info, call, catalogPkg, "TableEntry"); ok && (m == "Unlock" || m == "RUnlock") {
		if id := lintutil.RootIdent(recv); id != nil {
			if v := lintutil.LocalVar(info, id); v != nil {
				out = append(out, v)
			}
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v := lintutil.LocalVar(info, id); v != nil {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				out = append(out, v)
			}
		}
	}
	return out
}

// escapesVia reports whether the return statement transfers token v to
// the caller: v itself is returned, or a returned func literal releases
// v (lockTables' closure contract).
func escapesVia(info *types.Info, ret *ast.ReturnStmt, v *types.Var) bool {
	if ret == nil {
		return false
	}
	for _, e := range ret.Results {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok && lintutil.LocalVar(info, id) == v {
			return true
		}
		if fl, ok := ast.Unparen(e).(*ast.FuncLit); ok {
			released := false
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					for _, t := range releaseTargets(info, c) {
						if t == v {
							released = true
						}
					}
				}
				return !released
			})
			if released {
				return true
			}
		}
	}
	return false
}

// escapesFunc reports whether v escapes the function some other way —
// passed as a call argument, assigned to a named result or outer
// location, or released inside a func literal the function hands out.
// Conservative: any appearance of v as a non-receiver argument or on
// either side of an assignment to a non-local counts.
func escapesFunc(info *types.Info, fd *ast.FuncDecl, v *types.Var) bool {
	// Named result variables escape by definition.
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, n := range f.Names {
				if info.ObjectOf(n) == v {
					return true
				}
			}
		}
	}
	escaped := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && lintutil.LocalVar(info, id) == v {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && lintutil.LocalVar(info, id) == v {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}
