// Fixture for the lockorder analyzer, type-checked against the linttest
// stubs under import path "hique" (the serving layer, so rule 1 stays
// quiet and the ordering rules are what fires).
package hique

import (
	"sort"

	"hique/internal/catalog"
)

// lockTables is the sanctioned ordered batch acquirer: sort by table ID,
// then lock in a loop, handing the releases to the returned closure.
// Must produce no diagnostics.
func lockTables(entries []*catalog.TableEntry) func() {
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID() < entries[j].ID() })
	for _, e := range entries {
		e.Lock()
	}
	return func() {
		for i := len(entries) - 1; i >= 0; i-- {
			entries[i].Unlock()
		}
	}
}

// rlockTables forgot the sort: the sanctioned name does not excuse an
// unordered acquisition loop.
func rlockTables(entries []*catalog.TableEntry) func() {
	for _, e := range entries {
		e.RLock() // want "lockTables acquires entry locks in a loop without sorting"
	}
	return func() {
		for i := len(entries) - 1; i >= 0; i-- {
			entries[i].RUnlock()
		}
	}
}

func badPair(a, b *catalog.TableEntry) {
	a.Lock()
	b.Lock() // want "second table lock acquired while one may be held"
	b.Unlock()
	a.Unlock()
}

// goodPair establishes the ascending-ID order explicitly — the warm
// fast-path swap idiom. Must produce no diagnostics.
func goodPair(a, b *catalog.TableEntry) {
	if b.ID() < a.ID() {
		a, b = b, a
	}
	a.Lock()
	b.Lock()
	defer b.Unlock()
	defer a.Unlock()
}

func badLeak(a *catalog.TableEntry, cond bool) {
	a.Lock()
	if cond {
		return // want "may still be held on this return path"
	}
	a.Unlock()
}

func helperAcquire(e *catalog.TableEntry) {
	e.RLock()
	e.RUnlock()
}

func badCallWhileHeld(a, b *catalog.TableEntry) {
	a.Lock()
	helperAcquire(b) // want `call to helperAcquire \(which acquires table locks\) while a table lock is held`
	a.Unlock()
}

func badNested(a *catalog.TableEntry, entries []*catalog.TableEntry) {
	a.Lock()
	defer a.Unlock()
	unlock := lockTables(entries) // want "lockTables called while a table lock is already held"
	unlock()
}

func badDiscard(entries []*catalog.TableEntry) {
	_ = lockTables(entries) // want "unlock function is discarded"
}

func badLoop(entries []*catalog.TableEntry) { // want `table lock \(e\) may still be held`
	for _, e := range entries {
		e.Lock() // want "table locks acquired in a loop" "second table lock acquired"
	}
}

// scanAll releases within each iteration — a legal per-entry critical
// section. Must produce no diagnostics.
func scanAll(entries []*catalog.TableEntry) int {
	n := 0
	for _, e := range entries {
		e.RLock()
		n += e.NumRows()
		e.RUnlock()
	}
	return n
}
