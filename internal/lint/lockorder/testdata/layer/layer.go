// Fixture for lockorder rule 1: entry locks touched outside the hique
// serving layer (import path hique/internal/other here).
package other

import "hique/internal/catalog"

func touch(e *catalog.TableEntry) int {
	e.RLock() // want "outside the hique serving layer"
	n := e.NumRows()
	e.RUnlock()
	return n
}
