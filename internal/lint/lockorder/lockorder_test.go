package lockorder_test

import (
	"testing"

	"hique/internal/lint/linttest"
	"hique/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/serving", "hique", lockorder.Analyzer)
}

func TestLockOrderLayering(t *testing.T) {
	linttest.Run(t, "testdata/layer", "hique/internal/other", lockorder.Analyzer)
}
