// Package cfgx builds a compact intra-procedural control-flow graph over
// a function body's statements — the substrate for the path-sensitive
// hique-vet analyzers (arena ownership, lock-held regions). It is a
// deliberately small re-implementation of the x/tools go/cfg idea on the
// standard library: blocks hold the statements that execute sequentially,
// edges follow if/for/range/switch/select/branch/return control flow.
//
// Coverage notes (sound for the analyses built on it):
//   - defer is NOT modelled as an edge; analyzers inspect defers
//     separately (they run on every exit, including panics).
//   - panics are not modelled: every call is assumed to return. Analyses
//     that care about panic paths must look at defers.
//   - goto targets any labeled statement in the function; break/continue
//     resolve through the enclosing loop/switch (optionally labeled).
package cfgx

import (
	"go/ast"
	"go/token"
)

// Block is a straight-line run of statements with control-flow edges to
// its successors. Return marks function-exit blocks.
type Block struct {
	Index  int
	Stmts  []ast.Stmt
	Succs  []*Block
	Return bool
}

// Graph is one function body's control-flow graph.
type Graph struct {
	Entry  *Block
	Blocks []*Block
}

// builder carries the loop/switch/label context while walking the body.
type builder struct {
	g       *Graph
	cur     *Block
	breaks  []breakTarget
	labels  map[string]*labelInfo
	pending pendingLabelState
}

type breakTarget struct {
	label    string
	brk      *Block // break lands here
	cont     *Block // continue lands here (nil for switch/select)
	isLoop   bool
	hasLabel bool
}

type labelInfo struct {
	block   *Block // goto target
	pending []*Block
}

// New builds the CFG for a function body. A nil body yields a graph with
// a single empty returning block.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelInfo{}}
	b.cur = b.newBlock()
	g.Entry = b.cur
	if body != nil {
		b.stmtList(body.List)
	}
	if b.cur != nil {
		b.cur.Return = true
	}
	// Resolve forward gotos.
	for _, li := range b.labels {
		for _, p := range li.pending {
			if li.block != nil {
				p.Succs = append(p.Succs, li.block)
			} else {
				p.Return = true // goto to a label outside coverage: treat as exit
			}
		}
	}
	return g
}

func (b *builder) newBlock() *Block {
	bl := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, bl)
	return bl
}

// jump ends the current block with an edge to dst and leaves no current
// block (the caller starts a fresh one if code follows).
func (b *builder) jump(dst *Block) {
	if b.cur != nil && dst != nil {
		b.cur.Succs = append(b.cur.Succs, dst)
	}
	b.cur = nil
}

// startBlock begins a new current block reached from the previous one.
func (b *builder) startBlock() *Block {
	nb := b.newBlock()
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, nb)
	}
	b.cur = nb
	return nb
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		if b.cur == nil {
			// Unreachable code after return/branch still gets a block so
			// analyzers can inspect it (it just has no predecessors).
			b.cur = b.newBlock()
		}
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, st.Init)
		}
		b.cur.Stmts = append(b.cur.Stmts, &ast.ExprStmt{X: st.Cond})
		condBlock := b.cur
		join := b.newBlock()
		// then branch
		thenEntry := b.newBlock()
		condBlock.Succs = append(condBlock.Succs, thenEntry)
		b.cur = thenEntry
		b.stmtList(st.Body.List)
		b.jump(join)
		// else branch
		if st.Else != nil {
			elseEntry := b.newBlock()
			condBlock.Succs = append(condBlock.Succs, elseEntry)
			b.cur = elseEntry
			b.stmt(st.Else)
			b.jump(join)
		} else {
			condBlock.Succs = append(condBlock.Succs, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if st.Init != nil {
			b.cur.Stmts = append(b.cur.Stmts, st.Init)
		}
		head := b.startBlock()
		if st.Cond != nil {
			head.Stmts = append(head.Stmts, &ast.ExprStmt{X: st.Cond})
		}
		exit := b.newBlock()
		post := b.newBlock()
		if st.Post != nil {
			post.Stmts = append(post.Stmts, st.Post)
		}
		post.Succs = append(post.Succs, head)
		if st.Cond != nil {
			head.Succs = append(head.Succs, exit)
		}
		label := b.pendingLabel(s)
		b.breaks = append(b.breaks, breakTarget{label: label, brk: exit, cont: post, isLoop: true, hasLabel: label != ""})
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		b.cur = body
		b.stmtList(st.Body.List)
		b.jump(post)
		b.breaks = b.breaks[:len(b.breaks)-1]
		if st.Cond == nil {
			// for {}: exit is only reachable through break.
		}
		b.cur = exit

	case *ast.RangeStmt:
		head := b.startBlock()
		head.Stmts = append(head.Stmts, &ast.ExprStmt{X: st.X})
		exit := b.newBlock()
		head.Succs = append(head.Succs, exit) // empty range
		label := b.pendingLabel(s)
		b.breaks = append(b.breaks, breakTarget{label: label, brk: exit, cont: head, isLoop: true, hasLabel: label != ""})
		body := b.newBlock()
		head.Succs = append(head.Succs, body)
		if st.Key != nil || st.Value != nil {
			body.Stmts = append(body.Stmts, assignOf(st))
		}
		b.cur = body
		b.stmtList(st.Body.List)
		b.jump(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.switchLike(s)

	case *ast.LabeledStmt:
		li := b.label(st.Label.Name)
		target := b.startBlock()
		li.block = target
		// The labeled statement itself executes next; loops/switches pick
		// up the pending label via pendingLabel.
		b.pending = pendingLabelState{name: st.Label.Name, stmt: st.Stmt}
		b.stmt(st.Stmt)
		b.pending = pendingLabelState{}

	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			for i := len(b.breaks) - 1; i >= 0; i-- {
				t := b.breaks[i]
				if st.Label == nil || (t.hasLabel && t.label == st.Label.Name) {
					b.jump(t.brk)
					return
				}
			}
			b.cur.Return = true
			b.cur = nil
		case token.CONTINUE:
			for i := len(b.breaks) - 1; i >= 0; i-- {
				t := b.breaks[i]
				if !t.isLoop {
					continue
				}
				if st.Label == nil || (t.hasLabel && t.label == st.Label.Name) {
					b.jump(t.cont)
					return
				}
			}
			b.cur.Return = true
			b.cur = nil
		case token.GOTO:
			li := b.label(st.Label.Name)
			if li.block != nil {
				b.jump(li.block)
			} else {
				li.pending = append(li.pending, b.cur)
				b.cur = nil
			}
		case token.FALLTHROUGH:
			// Handled by switchLike's sequential case chaining; treat as
			// block end here (the next case entry edge is added there).
		}

	case *ast.ReturnStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)
		b.cur.Return = true
		b.cur = nil

	case *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt,
		*ast.SendStmt, *ast.GoStmt, *ast.DeferStmt, *ast.EmptyStmt:
		b.cur.Stmts = append(b.cur.Stmts, s)

	default:
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

// pendingLabelState carries a label from LabeledStmt to the loop or
// switch it annotates.
type pendingLabelState struct {
	name string
	stmt ast.Stmt
}

func (b *builder) pendingLabel(s ast.Stmt) string {
	if b.pending.stmt == s {
		return b.pending.name
	}
	return ""
}

func (b *builder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	return li
}

// switchLike lowers switch/type-switch/select: every clause body becomes
// a branch from the head to the join; fallthrough chains to the next
// clause body.
func (b *builder) switchLike(s ast.Stmt) {
	var init ast.Stmt
	var tag ast.Expr
	var body *ast.BlockStmt
	switch st := s.(type) {
	case *ast.SwitchStmt:
		init, tag, body = st.Init, st.Tag, st.Body
	case *ast.TypeSwitchStmt:
		init, body = st.Init, st.Body
		if st.Assign != nil {
			b.cur.Stmts = append(b.cur.Stmts, st.Assign)
		}
	case *ast.SelectStmt:
		body = st.Body
	}
	if init != nil {
		b.cur.Stmts = append(b.cur.Stmts, init)
	}
	if tag != nil {
		b.cur.Stmts = append(b.cur.Stmts, &ast.ExprStmt{X: tag})
	}
	head := b.cur
	join := b.newBlock()
	label := b.pendingLabel(s)
	b.breaks = append(b.breaks, breakTarget{label: label, brk: join, hasLabel: label != ""})

	var clauses []ast.Stmt
	if body != nil {
		clauses = body.List
	}
	entries := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		entries[i] = b.newBlock()
		head.Succs = append(head.Succs, entries[i])
	}
	for i, cl := range clauses {
		var list []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				entries[i].Stmts = append(entries[i].Stmts, &ast.ExprStmt{X: e})
			}
			list = c.Body
		case *ast.CommClause:
			hasDefault = hasDefault || c.Comm == nil
			if c.Comm != nil {
				entries[i].Stmts = append(entries[i].Stmts, c.Comm)
			}
			list = c.Body
		}
		b.cur = entries[i]
		fallsThrough := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				list = list[:n-1]
			}
		}
		b.stmtList(list)
		if fallsThrough && i+1 < len(entries) {
			b.jump(entries[i+1])
		} else {
			b.jump(join)
		}
	}
	if _, isSelect := s.(*ast.SelectStmt); (!hasDefault && !isSelect) || len(clauses) == 0 {
		// No default: the switch can fall through without matching.
		head.Succs = append(head.Succs, join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

// assignOf materialises the range statement's key/value assignment so
// analyzers see the definitions in statement order.
func assignOf(st *ast.RangeStmt) ast.Stmt {
	lhs := []ast.Expr{}
	if st.Key != nil {
		lhs = append(lhs, st.Key)
	}
	if st.Value != nil {
		lhs = append(lhs, st.Value)
	}
	return &ast.AssignStmt{Lhs: lhs, Tok: st.Tok, Rhs: []ast.Expr{st.X}}
}
