package cfgx

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func bodyOf(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// reachable walks the graph from the entry.
func reachable(g *Graph) map[int]bool {
	seen := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func returningBlocks(g *Graph, seen map[int]bool) int {
	n := 0
	for _, b := range g.Blocks {
		if seen[b.Index] && b.Return {
			n++
		}
	}
	return n
}

func TestIfBothBranchesReturn(t *testing.T) {
	g := New(bodyOf(t, `func f(c bool) int {
		if c {
			return 1
		}
		return 2
	}`))
	seen := reachable(g)
	if got := returningBlocks(g, seen); got != 2 {
		t.Fatalf("got %d reachable returning blocks, want 2", got)
	}
}

func TestLoopHasBackEdge(t *testing.T) {
	g := New(bodyOf(t, `func f(xs []int) int {
		n := 0
		for _, x := range xs {
			n += x
		}
		return n
	}`))
	seen := reachable(g)
	// The range head must be its own successor transitively (body → head).
	backEdge := false
	for _, b := range g.Blocks {
		if !seen[b.Index] {
			continue
		}
		for _, s := range b.Succs {
			if s.Index <= b.Index {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Fatal("range loop produced no back edge")
	}
	if got := returningBlocks(g, seen); got != 1 {
		t.Fatalf("got %d returning blocks, want 1", got)
	}
}

func TestBreakSkipsRest(t *testing.T) {
	g := New(bodyOf(t, `func f() {
		for {
			break
		}
	}`))
	seen := reachable(g)
	if got := returningBlocks(g, seen); got != 1 {
		t.Fatalf("got %d returning blocks, want 1 (the post-loop exit)", got)
	}
}

func TestSwitchClausesJoin(t *testing.T) {
	g := New(bodyOf(t, `func f(x int) int {
		y := 0
		switch x {
		case 1:
			y = 1
		case 2:
			y = 2
		default:
			y = 3
		}
		return y
	}`))
	seen := reachable(g)
	if got := returningBlocks(g, seen); got != 1 {
		t.Fatalf("got %d returning blocks, want 1 (all clauses join)", got)
	}
}
