package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b FROM t WHERE a = 5")
	if len(stmt.Select) != 2 {
		t.Fatalf("select items = %d", len(stmt.Select))
	}
	if len(stmt.From) != 1 || stmt.From[0].Name != "t" {
		t.Fatalf("from = %v", stmt.From)
	}
	if len(stmt.Where) != 1 {
		t.Fatalf("where = %v", stmt.Where)
	}
	p := stmt.Where[0]
	if p.Op != CmpEq {
		t.Errorf("op = %v", p.Op)
	}
	if col, ok := p.Left.(*ColRef); !ok || col.Column != "a" {
		t.Errorf("left = %v", p.Left)
	}
	if lit, ok := p.Right.(*IntLit); !ok || lit.Value != 5 {
		t.Errorf("right = %v", p.Right)
	}
	if stmt.Limit != -1 {
		t.Errorf("limit = %d, want -1", stmt.Limit)
	}
}

func TestParseStar(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t")
	if len(stmt.Select) != 1 {
		t.Fatal("want one select item")
	}
	col, ok := stmt.Select[0].Expr.(*ColRef)
	if !ok || col.Column != "*" {
		t.Fatalf("star item = %v", stmt.Select[0].Expr)
	}
}

func TestParseJoinQuery(t *testing.T) {
	stmt := mustParse(t, "SELECT r.a, s.b FROM r, s WHERE r.id = s.id AND r.a > 10")
	if len(stmt.From) != 2 {
		t.Fatalf("from = %v", stmt.From)
	}
	if len(stmt.Where) != 2 {
		t.Fatalf("where = %v", stmt.Where)
	}
	join := stmt.Where[0]
	l, lok := join.Left.(*ColRef)
	r, rok := join.Right.(*ColRef)
	if !lok || !rok || l.Table != "r" || r.Table != "s" {
		t.Errorf("join predicate = %v", join)
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	stmt := mustParse(t, "SELECT grp, SUM(x) AS total, COUNT(*), AVG(y), MIN(x), MAX(y) FROM t GROUP BY grp")
	if !stmt.HasAggregates() {
		t.Fatal("HasAggregates = false")
	}
	if stmt.Select[1].Alias != "total" {
		t.Errorf("alias = %q", stmt.Select[1].Alias)
	}
	agg := stmt.Select[2].Expr.(*AggExpr)
	if agg.Func != AggCount || !agg.Star {
		t.Errorf("count(*) = %v", agg)
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].Column != "grp" {
		t.Errorf("group by = %v", stmt.GroupBy)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT a + b * c FROM t")
	e := stmt.Select[0].Expr.(*BinaryExpr)
	if e.Op != OpAdd {
		t.Fatalf("top op = %c", e.Op)
	}
	right := e.Right.(*BinaryExpr)
	if right.Op != OpMul {
		t.Fatalf("mul should bind tighter, got %c", right.Op)
	}
	// Parens override.
	stmt = mustParse(t, "SELECT (a + b) * c FROM t")
	e = stmt.Select[0].Expr.(*BinaryExpr)
	if e.Op != OpMul {
		t.Fatalf("paren top op = %c", e.Op)
	}
}

func TestParseTPCHQ1Shape(t *testing.T) {
	q := `SELECT l_returnflag, l_linestatus,
	        SUM(l_quantity) AS sum_qty,
	        SUM(l_extendedprice) AS sum_base_price,
	        SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
	        SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
	        AVG(l_quantity) AS avg_qty,
	        AVG(l_extendedprice) AS avg_price,
	        AVG(l_discount) AS avg_disc,
	        COUNT(*) AS count_order
	      FROM lineitem
	      WHERE l_shipdate <= DATE '1998-09-02'
	      GROUP BY l_returnflag, l_linestatus
	      ORDER BY l_returnflag, l_linestatus`
	stmt := mustParse(t, q)
	if len(stmt.Select) != 10 {
		t.Fatalf("select items = %d, want 10", len(stmt.Select))
	}
	if len(stmt.GroupBy) != 2 || len(stmt.OrderBy) != 2 {
		t.Fatalf("group/order = %d/%d", len(stmt.GroupBy), len(stmt.OrderBy))
	}
	if stmt.Where[0].Op != CmpLe {
		t.Errorf("where op = %v", stmt.Where[0].Op)
	}
	if _, ok := stmt.Where[0].Right.(*DateLit); !ok {
		t.Errorf("where rhs = %T, want DateLit", stmt.Where[0].Right)
	}
}

func TestParseOrderByDescAndLimit(t *testing.T) {
	stmt := mustParse(t, "SELECT a, SUM(b) AS revenue FROM t GROUP BY a ORDER BY revenue DESC, a ASC LIMIT 10")
	if len(stmt.OrderBy) != 2 {
		t.Fatalf("order by = %v", stmt.OrderBy)
	}
	if !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("desc flags wrong: %v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Errorf("limit = %d", stmt.Limit)
	}
}

func TestParseTableAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT c.x FROM customer AS c, orders o WHERE c.id = o.cid")
	if stmt.From[0].Alias != "c" || stmt.From[1].Alias != "o" {
		t.Errorf("aliases = %q, %q", stmt.From[0].Alias, stmt.From[1].Alias)
	}
	if stmt.From[0].Name != "customer" || stmt.From[1].Name != "orders" {
		t.Errorf("names = %q, %q", stmt.From[0].Name, stmt.From[1].Name)
	}
}

func TestParseDateLiteral(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE d < DATE '1995-03-15'")
	lit := stmt.Where[0].Right.(*DateLit)
	// 1995-03-15 is 9204 days after epoch.
	if lit.Days != 9204 {
		t.Errorf("days = %d, want 9204", lit.Days)
	}
}

func TestParseStringEscapes(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE s = 'it''s'")
	lit := stmt.Where[0].Right.(*StringLit)
	if lit.Value != "it's" {
		t.Errorf("value = %q", lit.Value)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE x > -5 AND y < -1.5")
	if lit := stmt.Where[0].Right.(*IntLit); lit.Value != -5 {
		t.Errorf("int = %d", lit.Value)
	}
	if lit := stmt.Where[1].Right.(*FloatLit); lit.Value != -1.5 {
		t.Errorf("float = %g", lit.Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a =",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t WHERE s = 'unterminated",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t extra garbage ^",
		"SELECT a FROM t ORDER BY",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b FROM t WHERE a = 5",
		"SELECT grp, SUM(x) AS total FROM t GROUP BY grp ORDER BY total DESC LIMIT 3",
		"SELECT r.a FROM r, s WHERE r.id = s.id",
	}
	for _, q := range queries {
		stmt := mustParse(t, q)
		rendered := stmt.String()
		stmt2 := mustParse(t, rendered)
		if stmt2.String() != rendered {
			t.Errorf("round trip unstable:\n  first:  %s\n  second: %s", rendered, stmt2.String())
		}
		if !strings.Contains(strings.ToUpper(rendered), "SELECT") {
			t.Errorf("rendered query looks wrong: %s", rendered)
		}
	}
}

func TestCmpOpHelpers(t *testing.T) {
	for _, op := range []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe} {
		if op.Negate().Negate() != op {
			t.Errorf("Negate not involutive for %v", op)
		}
		if op.Flip().Flip() != op {
			t.Errorf("Flip not involutive for %v", op)
		}
	}
	if CmpLt.Flip() != CmpGt || CmpLe.Negate() != CmpGt {
		t.Error("Flip/Negate tables wrong")
	}
}
