// Package sql implements HIQUE's SQL front end: a lexer and a
// recursive-descent parser for the dialect the paper supports (§IV):
// conjunctive SELECT queries with equality and range predicates, equi-joins,
// arbitrary GROUP BY and ORDER BY clauses, the standard aggregate functions,
// and LIMIT. Nested queries and statistical aggregates are not supported,
// matching the paper's stated scope.
package sql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind enumerates lexical token classes.
type TokenKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier (possibly a keyword; the parser decides).
	TokIdent
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokString is a single-quoted string literal (quotes stripped).
	TokString
	// TokSymbol is punctuation: , ( ) * + - / . ? and comparison operators.
	// '?' is the positional bind-parameter placeholder.
	TokSymbol
)

// Token is one lexical unit.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input, for error messages
}

// Lex tokenises the input. Comparison operators (<=, >=, <>, !=) are
// emitted as single symbol tokens.
func Lex(input string) ([]Token, error) {
	return LexInto(nil, input)
}

// LexInto tokenises the input into toks (reset to length zero first),
// reusing its backing array — the allocation-free variant the warm
// serving path uses with a pooled token buffer.
func LexInto(toks []Token, input string) ([]Token, error) {
	toks = toks[:0]
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '_' || c >= utf8.RuneSelf || unicode.IsLetter(rune(c)):
			r, width := utf8.DecodeRuneInString(input[i:])
			if r != '_' && !unicode.IsLetter(r) {
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", r, i)
			}
			start := i
			i += width
			for i < n {
				r, width = utf8.DecodeRuneInString(input[i:])
				if r != '_' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					break
				}
				i += width
			}
			toks = append(toks, Token{Kind: TokIdent, Text: input[start:i], Pos: start})
		case unicode.IsDigit(rune(c)):
			start := i
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.') {
				i++
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case c == '\'':
			start := i
			i++
			bodyStart := i
			escaped := false
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						if !escaped {
							escaped = true
							sb.WriteString(input[bodyStart:i])
						}
						sb.WriteByte('\'')
						i += 2
						bodyStart = i
						continue
					}
					i++
					break
				}
				if escaped {
					sb.WriteByte(input[i])
				}
				i++
			}
			text := input[bodyStart : i-1] // escape-free literals alias the input
			if escaped {
				text = sb.String()
			}
			toks = append(toks, Token{Kind: TokString, Text: text, Pos: start})
		case c == '<' || c == '>' || c == '!':
			start := i
			i++
			if i < n && (input[i] == '=' || (c == '<' && input[i] == '>')) {
				i++
			}
			toks = append(toks, Token{Kind: TokSymbol, Text: input[start:i], Pos: start})
		case strings.ContainsRune(",()*+-/=.?", rune(c)):
			// Slice the input rather than string(c): the one-byte text
			// shares the statement's backing array, so symbol-heavy
			// statements (a multi-VALUES insert is ~4 symbols per row)
			// lex without allocating.
			toks = append(toks, Token{Kind: TokSymbol, Text: input[i : i+1], Pos: i})
			i++
		case c == ';':
			i++ // statement terminator is optional and ignored
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}
