package sql

import (
	"fmt"
	"strings"
)

// Stmt is any parsed SQL statement: a SELECT query or one of the DML
// forms (INSERT, DELETE, UPDATE). ParseStmt returns this interface;
// callers that accept only queries keep using Parse.
type Stmt interface {
	fmt.Stringer
	stmtNode()
}

func (s *SelectStmt) stmtNode() {}
func (s *InsertStmt) stmtNode() {}
func (s *DeleteStmt) stmtNode() {}
func (s *UpdateStmt) stmtNode() {}

// InsertStmt is a parsed INSERT INTO ... VALUES statement. Each row holds
// one expression per target column: a literal or a '?' placeholder (the
// paper's engine evaluates queries; value expressions in DML stay
// constants, so a multi-VALUES batch plans without touching the
// optimizer).
type InsertStmt struct {
	Table string
	// Columns is the explicit target column list, lowercased; empty means
	// schema order.
	Columns []string
	// Rows are the VALUES tuples, one slice per parenthesised row.
	Rows [][]Expr
	// NumParams counts '?' placeholders in statement order.
	NumParams int
}

// String renders the statement back to SQL (normalised).
func (s *InsertStmt) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(s.Columns, ", "))
		b.WriteString(")")
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// DeleteStmt is a parsed DELETE FROM statement. An empty Where deletes
// every row.
type DeleteStmt struct {
	Table     string
	Where     []Predicate // implicit conjunction
	NumParams int
}

// String renders the statement back to SQL (normalised).
func (s *DeleteStmt) String() string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(s.Table)
	writeWhere(&b, s.Where)
	return b.String()
}

// SetClause is one UPDATE assignment: column = constant expression.
type SetClause struct {
	Column string
	Value  Expr
}

// UpdateStmt is a parsed UPDATE ... SET statement. An empty Where updates
// every row.
type UpdateStmt struct {
	Table     string
	Set       []SetClause
	Where     []Predicate // implicit conjunction
	NumParams int
}

// String renders the statement back to SQL (normalised).
func (s *UpdateStmt) String() string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(s.Table)
	b.WriteString(" SET ")
	for i := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.Set[i].Column)
		b.WriteString(" = ")
		b.WriteString(s.Set[i].Value.String())
	}
	writeWhere(&b, s.Where)
	return b.String()
}

func writeWhere(b *strings.Builder, preds []Predicate) {
	if len(preds) == 0 {
		return
	}
	b.WriteString(" WHERE ")
	for i := range preds {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(preds[i].String())
	}
}

// IsDML reports whether the statement's leading keyword is one of the DML
// verbs (INSERT, UPDATE, DELETE). It inspects the raw text only — a
// single pass over the first word — so a serving layer can route a
// request to the read or write path without lexing it twice.
func IsDML(query string) bool {
	i := 0
	for i < len(query) {
		switch query[i] {
		case ' ', '\t', '\n', '\r', ';':
			i++
			continue
		}
		break
	}
	j := i
	for j < len(query) {
		c := query[j]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			j++
			continue
		}
		break
	}
	switch strings.ToLower(query[i:j]) {
	case "insert", "update", "delete":
		return true
	}
	return false
}

// ParseStmt parses a single statement of any supported kind, dispatching
// on the leading keyword: SELECT statements parse exactly as Parse does,
// and INSERT / DELETE / UPDATE parse into their DML forms.
func ParseStmt(input string) (Stmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmt Stmt
	switch t := p.peek(); {
	case t.Kind == TokIdent && strings.EqualFold(t.Text, "insert"):
		stmt, err = p.parseInsert()
	case t.Kind == TokIdent && strings.EqualFold(t.Text, "delete"):
		stmt, err = p.parseDelete()
	case t.Kind == TokIdent && strings.EqualFold(t.Text, "update"):
		stmt, err = p.parseUpdate()
	default:
		stmt, err = p.parseSelect()
	}
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input starting at %q", p.peek().Text)
	}
	switch s := stmt.(type) {
	case *SelectStmt:
		s.NumParams = p.params
	case *InsertStmt:
		s.NumParams = p.params
	case *DeleteStmt:
		s.NumParams = p.params
	case *UpdateStmt:
		s.NumParams = p.params
	}
	return stmt, nil
}

// isConstExpr accepts a DML value expression: a literal or a placeholder.
func isConstExpr(e Expr) bool {
	if _, ok := e.(*Param); ok {
		return true
	}
	switch e.(type) {
	case *IntLit, *FloatLit, *StringLit, *DateLit:
		return true
	}
	return false
}

// parseTableName consumes a bare table identifier (no alias).
func (p *parser) parseTableName() (string, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return "", p.errorf("expected table name, found %q", t.Text)
	}
	return strings.ToLower(t.Text), nil
}

// parseInsert parses
//
//	INSERT INTO table [ '(' col (',' col)* ')' ]
//	VALUES '(' value (',' value)* ')' [ ',' '(' ... ')' ]*
//
// where each value is a literal (number, string, DATE 'x', unary-minus
// number) or a '?' placeholder.
func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.symbol("(") {
		for {
			t := p.next()
			if t.Kind != TokIdent {
				return nil, p.errorf("expected column name, found %q", t.Text)
			}
			stmt.Columns = append(stmt.Columns, strings.ToLower(t.Text))
			if !p.symbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			if !isConstExpr(e) {
				return nil, p.errorf("INSERT values must be literals or '?' placeholders, found %s", e)
			}
			row = append(row, e)
			if !p.symbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		if len(stmt.Rows) > 0 && len(row) != len(stmt.Rows[0]) {
			return nil, p.errorf("VALUES rows must have equal arity: row %d has %d values, row 1 has %d",
				len(stmt.Rows)+1, len(row), len(stmt.Rows[0]))
		}
		if len(stmt.Columns) > 0 && len(row) != len(stmt.Columns) {
			return nil, p.errorf("VALUES row has %d values for %d named columns", len(row), len(stmt.Columns))
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.symbol(",") {
			break
		}
	}
	return stmt, nil
}

// parseDelete parses DELETE FROM table [WHERE pred (AND pred)*].
func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	stmt.Where, err = p.parseWhere()
	return stmt, err
}

// parseUpdate parses
//
//	UPDATE table SET col '=' value (',' col '=' value)* [WHERE ...]
//
// with the same constant-value restriction as INSERT.
func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("update"); err != nil {
		return nil, err
	}
	name, err := p.parseTableName()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.Kind != TokIdent {
			return nil, p.errorf("expected column name, found %q", t.Text)
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		v, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if !isConstExpr(v) {
			return nil, p.errorf("UPDATE values must be literals or '?' placeholders, found %s", v)
		}
		stmt.Set = append(stmt.Set, SetClause{Column: strings.ToLower(t.Text), Value: v})
		if !p.symbol(",") {
			break
		}
	}
	stmt.Where, err = p.parseWhere()
	return stmt, err
}

// parseWhere parses an optional WHERE conjunction (shared by SELECT,
// DELETE, and UPDATE).
func (p *parser) parseWhere() ([]Predicate, error) {
	if !p.keyword("where") {
		return nil, nil
	}
	var preds []Predicate
	for {
		conds, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		preds = append(preds, conds...)
		if !p.keyword("and") {
			break
		}
	}
	return preds, nil
}
