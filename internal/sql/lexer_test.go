package sql

import (
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("SELECT a, b2 FROM t WHERE x >= 10.5 AND s = 'hi'")
	if err != nil {
		t.Fatal(err)
	}
	texts := make([]string, len(toks))
	for i, tok := range toks {
		texts[i] = tok.Text
	}
	want := []string{"SELECT", "a", ",", "b2", "FROM", "t", "WHERE", "x", ">=", "10.5", "AND", "s", "=", "hi", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Error("missing EOF token")
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("< <= > >= <> != = + - * / ( ) .")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<", "<=", ">", ">=", "<>", "!=", "=", "+", "-", "*", "/", "(", ")", "."}
	for i, w := range want {
		if toks[i].Kind != TokSymbol || toks[i].Text != w {
			t.Errorf("token %d = %q (%v), want symbol %q", i, toks[i].Text, toks[i].Kind, w)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex("'a''b' ''")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a'b" {
		t.Errorf("escaped string = %q", toks[0].Text)
	}
	if toks[1].Kind != TokString || toks[1].Text != "" {
		t.Errorf("empty string = %q (%v)", toks[1].Text, toks[1].Kind)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{"'unterminated", "a @ b", "#comment"} {
		if _, err := Lex(bad); err == nil {
			t.Errorf("Lex(%q) should fail", bad)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("ab  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 4 {
		t.Errorf("positions = %d, %d", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexSemicolonIgnored(t *testing.T) {
	toks, err := Lex("SELECT a FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Text == ";" {
			t.Error("semicolon should be dropped")
		}
	}
	if len(kinds(toks)) != 5 { // SELECT a FROM t EOF
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexUnicodeIdentifiers(t *testing.T) {
	toks, err := Lex("sélect_col")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "sélect_col" {
		t.Errorf("unicode ident = %q", toks[0].Text)
	}
}
