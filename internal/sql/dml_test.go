package sql

import (
	"strings"
	"testing"
)

func TestParseInsert(t *testing.T) {
	s, err := ParseStmt("INSERT INTO T VALUES (1, 2.5, 'x'), (-2, ?, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins, ok := s.(*InsertStmt)
	if !ok {
		t.Fatalf("got %T, want *InsertStmt", s)
	}
	if ins.Table != "t" {
		t.Errorf("table = %q", ins.Table)
	}
	if len(ins.Rows) != 2 || len(ins.Rows[0]) != 3 {
		t.Fatalf("rows = %d x %d", len(ins.Rows), len(ins.Rows[0]))
	}
	if ins.NumParams != 1 {
		t.Errorf("NumParams = %d, want 1", ins.NumParams)
	}
	if lit, ok := ins.Rows[1][0].(*IntLit); !ok || lit.Value != -2 {
		t.Errorf("row 2 col 1 = %v, want -2", ins.Rows[1][0])
	}
	if _, ok := ins.Rows[1][1].(*Param); !ok {
		t.Errorf("row 2 col 2 = %T, want *Param", ins.Rows[1][1])
	}
}

func TestParseInsertColumns(t *testing.T) {
	s, err := ParseStmt("insert into t (b, A) values (DATE '2024-06-01', 7)")
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*InsertStmt)
	if len(ins.Columns) != 2 || ins.Columns[0] != "b" || ins.Columns[1] != "a" {
		t.Fatalf("columns = %v", ins.Columns)
	}
	if _, ok := ins.Rows[0][0].(*DateLit); !ok {
		t.Errorf("col 1 = %T, want *DateLit", ins.Rows[0][0])
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	s, err := ParseStmt("DELETE FROM t WHERE id = ? AND price > 3.5")
	if err != nil {
		t.Fatal(err)
	}
	del := s.(*DeleteStmt)
	if del.Table != "t" || len(del.Where) != 2 || del.NumParams != 1 {
		t.Fatalf("delete = %+v", del)
	}

	s, err = ParseStmt("UPDATE t SET price = ?, label = 'z' WHERE id <= 4")
	if err != nil {
		t.Fatal(err)
	}
	upd := s.(*UpdateStmt)
	if upd.Table != "t" || len(upd.Set) != 2 || len(upd.Where) != 1 || upd.NumParams != 1 {
		t.Fatalf("update = %+v", upd)
	}
	if upd.Set[0].Column != "price" || upd.Set[1].Column != "label" {
		t.Fatalf("set targets = %v, %v", upd.Set[0].Column, upd.Set[1].Column)
	}

	// No WHERE clause: affects every row.
	if s, err = ParseStmt("delete from t"); err != nil {
		t.Fatal(err)
	}
	if del := s.(*DeleteStmt); del.Where != nil {
		t.Fatalf("bare delete Where = %v", del.Where)
	}
}

func TestParseStmtSelect(t *testing.T) {
	s, err := ParseStmt("SELECT a FROM t WHERE a = ?")
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := s.(*SelectStmt)
	if !ok || sel.NumParams != 1 {
		t.Fatalf("got %T NumParams=%d", s, sel.NumParams)
	}
}

func TestParseDMLErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"INSERT INTO t VALUES (1 + 2)", "expected \")\""},
		{"INSERT INTO t VALUES (a)", "literals or '?'"},
		{"INSERT INTO t VALUES (1), (2, 3)", "equal arity"},
		{"INSERT INTO t (a, b) VALUES (1)", "named columns"},
		{"INSERT INTO t SELECT 1", "expected VALUES"},
		{"UPDATE t SET a = b", "literals or '?'"},
		{"UPDATE t WHERE a = 1", "expected SET"},
		{"DELETE t WHERE a = 1", "expected FROM"},
		{"INSERT INTO t VALUES (1) garbage", "trailing input"},
	}
	for _, c := range cases {
		_, err := ParseStmt(c.in)
		if err == nil {
			t.Errorf("%q: expected error", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%q: error %q does not mention %q", c.in, err, c.wantSub)
		}
	}
}

// TestDMLStringRoundTrip pins that the rendered form re-parses to the
// same statement (the analogue of Normalize's parse-equivalence for
// SELECTs).
func TestDMLStringRoundTrip(t *testing.T) {
	for _, in := range []string{
		"INSERT INTO t VALUES (1, 'a''b'), (?, ?)",
		"insert into t (x, y) values (-1.5, date '2020-01-02')",
		"DELETE FROM t WHERE id <> ?",
		"UPDATE t SET v = 9 WHERE k >= 2 AND k < 10",
	} {
		s1, err := ParseStmt(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		s2, err := ParseStmt(s1.String())
		if err != nil {
			t.Fatalf("%q rendered as %q: %v", in, s1.String(), err)
		}
		if s1.String() != s2.String() {
			t.Errorf("%q: round trip %q != %q", in, s1.String(), s2.String())
		}
	}
}

func TestIsDML(t *testing.T) {
	cases := map[string]bool{
		"INSERT INTO t VALUES (1)": true,
		"  \n\tupdate t set a = 1": true,
		";delete from t":           true,
		"SELECT * FROM t":          false,
		"  select 1":               false,
		"":                         false,
		"insertx into t":           false,
	}
	for in, want := range cases {
		if got := IsDML(in); got != want {
			t.Errorf("IsDML(%q) = %v, want %v", in, got, want)
		}
	}
}
