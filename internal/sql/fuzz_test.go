package sql

import (
	"strings"
	"testing"
)

// FuzzNormalize checks the lexer-level rewrites the plan cache keys on:
//
//   - Normalize is a fixed point (normalising twice changes nothing, and
//     normalised text always re-lexes), and
//   - normalisation preserves parse equivalence: whenever the original
//     parses, the normalised text parses to the same statement, and
//   - NormalizeShape returns a fixed point whose placeholder arity is
//     stable and that parses whenever the original does.
//
// Anything less and two spellings of one query could land on different
// cache keys — or worse, one key could serve two different queries.
func FuzzNormalize(f *testing.F) {
	seeds := []string{
		"SELECT id FROM t WHERE id = 42",
		"select  A.x, b.y FROM a, b WHERE a.k = b.k AND a.x > 9.5 ORDER BY x DESC LIMIT 3",
		"SELECT g, COUNT(*) AS n, SUM(v) FROM t WHERE s = 'it''s' GROUP BY g",
		"SELECT d FROM t WHERE d >= DATE '2020-01-02' AND d < DATE '2021-01-02'",
		"SELECT id FROM t WHERE a = ? AND 5 < b AND c <> -7",
		"SELECT price * 2 + 1 FROM t WHERE x = 1 + 2 LIMIT 10",
		"SELECT * FROM t WHERE s = '\x00level=-O2'",
		"SELECT MIN(x) FROM t WHERE y != 0042 AND z <= 1.2.3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		n1, err := Normalize(q)
		if err != nil {
			return // not lexable: nothing to normalise
		}
		n2, err := Normalize(n1)
		if err != nil {
			t.Fatalf("normalised text does not re-lex: %q: %v", n1, err)
		}
		if n1 != n2 {
			t.Fatalf("Normalize is not idempotent:\n 1: %q\n 2: %q", n1, n2)
		}

		s1, perr := Parse(q)
		if perr == nil {
			s2, err := Parse(n1)
			if err != nil {
				t.Fatalf("original parses but normalised %q does not: %v", n1, err)
			}
			if s1.String() != s2.String() {
				t.Fatalf("parse differs after normalising %q:\n 1: %s\n 2: %s", q, s1, s2)
			}
			if s1.NumParams != s2.NumParams {
				t.Fatalf("arity differs after normalising %q: %d vs %d", q, s1.NumParams, s2.NumParams)
			}
		}

		shape, lifted, err := NormalizeShape(q)
		if err != nil {
			t.Fatalf("Normalize accepts %q but NormalizeShape rejects it: %v", q, err)
		}
		shape2, lifted2, err := NormalizeShape(shape)
		if err != nil {
			t.Fatalf("shape does not re-shape: %q: %v", shape, err)
		}
		if shape2 != shape {
			t.Fatalf("NormalizeShape is not a fixed point:\n 1: %q\n 2: %q", shape, shape2)
		}
		if len(lifted2) != len(lifted) {
			t.Fatalf("shape arity unstable for %q: %d then %d", q, len(lifted), len(lifted2))
		}
		for i, l := range lifted2 {
			if l != nil {
				t.Fatalf("re-shaping %q lifted a literal at slot %d", shape, i)
			}
		}
		if perr == nil {
			ss, err := Parse(shape)
			if err != nil {
				t.Fatalf("original parses but shape %q does not: %v", shape, err)
			}
			if ss.NumParams != len(lifted) {
				t.Fatalf("shape %q parses to %d params, lift reported %d", shape, ss.NumParams, len(lifted))
			}
		}
	})
}

// FuzzParseStmt checks the parser itself: no input panics, and for any
// statement that parses, rendering it with String and re-parsing reaches
// a fixed point. The printed form is the normal form — JOIN ... ON
// desugars to comma-FROM conjuncts, BETWEEN to a range pair — so
// print(parse(q)) must equal print(parse(print(parse(q)))). Seeds cover
// the full grammar: TPC-H Q1/Q3/Q6/Q10 shapes (N-way joins, expression
// aggregates, date arithmetic, BETWEEN, HAVING), explicit JOIN syntax,
// ORDER BY on aggregate expressions, and DML.
func FuzzParseStmt(f *testing.F) {
	seeds := []string{
		// TPC-H shapes.
		`SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
		   SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
		   AVG(l_discount) AS avg_disc, COUNT(*) AS count_order
		 FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - 90
		 GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
		`SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, o_orderdate, o_shippriority
		 FROM customer, orders, lineitem
		 WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey AND l_orderkey = o_orderkey
		   AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15'
		 GROUP BY l_orderkey, o_orderdate, o_shippriority ORDER BY revenue DESC, o_orderdate LIMIT 10`,
		`SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem
		 WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
		   AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24`,
		// Explicit JOIN ... ON (desugars to comma-FROM + WHERE).
		"SELECT a.x, b.y FROM a JOIN b ON a.k = b.k WHERE a.x > 3 ORDER BY a.x",
		"SELECT a.x FROM a INNER JOIN b ON a.k = b.k JOIN c ON b.j = c.j LIMIT 7",
		// HAVING by alias, by aggregate text, with BETWEEN.
		"SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING n > 3 ORDER BY g",
		"SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 10.5 AND g <> 2",
		"SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING n BETWEEN 2 AND 9",
		// ORDER BY an aggregate expression.
		"SELECT g, SUM(v) FROM t GROUP BY g ORDER BY SUM(v) DESC",
		// Parameters keep their textual order through the desugar.
		"SELECT a.x FROM a JOIN b ON a.k = b.k WHERE a.x > ? AND b.y = ?",
		// DML.
		"INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')",
		"UPDATE t SET v = 9 WHERE g BETWEEN 1 AND 4",
		"DELETE FROM t WHERE v < 0",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		st1, err := ParseStmt(q) // must not panic on any input
		if err != nil {
			return
		}
		r1 := st1.String()
		st2, err := ParseStmt(r1)
		if err != nil {
			t.Fatalf("statement prints %q but it does not re-parse: %v", r1, err)
		}
		if r2 := st2.String(); r1 != r2 {
			t.Fatalf("print/re-parse is not a fixed point:\n 1: %q\n 2: %q", r1, r2)
		}
		if s1, ok := st1.(*SelectStmt); ok {
			s2 := st2.(*SelectStmt)
			if s1.NumParams != s2.NumParams {
				t.Fatalf("re-parse changed arity for %q: %d vs %d", r1, s1.NumParams, s2.NumParams)
			}
			if strings.Contains(strings.ToUpper(r1), " BETWEEN ") {
				t.Fatalf("printed form %q retains BETWEEN; it must render the desugared range pair", r1)
			}
		}
	})
}
