package sql

import "testing"

// FuzzNormalize checks the lexer-level rewrites the plan cache keys on:
//
//   - Normalize is a fixed point (normalising twice changes nothing, and
//     normalised text always re-lexes), and
//   - normalisation preserves parse equivalence: whenever the original
//     parses, the normalised text parses to the same statement, and
//   - NormalizeShape returns a fixed point whose placeholder arity is
//     stable and that parses whenever the original does.
//
// Anything less and two spellings of one query could land on different
// cache keys — or worse, one key could serve two different queries.
func FuzzNormalize(f *testing.F) {
	seeds := []string{
		"SELECT id FROM t WHERE id = 42",
		"select  A.x, b.y FROM a, b WHERE a.k = b.k AND a.x > 9.5 ORDER BY x DESC LIMIT 3",
		"SELECT g, COUNT(*) AS n, SUM(v) FROM t WHERE s = 'it''s' GROUP BY g",
		"SELECT d FROM t WHERE d >= DATE '2020-01-02' AND d < DATE '2021-01-02'",
		"SELECT id FROM t WHERE a = ? AND 5 < b AND c <> -7",
		"SELECT price * 2 + 1 FROM t WHERE x = 1 + 2 LIMIT 10",
		"SELECT * FROM t WHERE s = '\x00level=-O2'",
		"SELECT MIN(x) FROM t WHERE y != 0042 AND z <= 1.2.3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		n1, err := Normalize(q)
		if err != nil {
			return // not lexable: nothing to normalise
		}
		n2, err := Normalize(n1)
		if err != nil {
			t.Fatalf("normalised text does not re-lex: %q: %v", n1, err)
		}
		if n1 != n2 {
			t.Fatalf("Normalize is not idempotent:\n 1: %q\n 2: %q", n1, n2)
		}

		s1, perr := Parse(q)
		if perr == nil {
			s2, err := Parse(n1)
			if err != nil {
				t.Fatalf("original parses but normalised %q does not: %v", n1, err)
			}
			if s1.String() != s2.String() {
				t.Fatalf("parse differs after normalising %q:\n 1: %s\n 2: %s", q, s1, s2)
			}
			if s1.NumParams != s2.NumParams {
				t.Fatalf("arity differs after normalising %q: %d vs %d", q, s1.NumParams, s2.NumParams)
			}
		}

		shape, lifted, err := NormalizeShape(q)
		if err != nil {
			t.Fatalf("Normalize accepts %q but NormalizeShape rejects it: %v", q, err)
		}
		shape2, lifted2, err := NormalizeShape(shape)
		if err != nil {
			t.Fatalf("shape does not re-shape: %q: %v", shape, err)
		}
		if shape2 != shape {
			t.Fatalf("NormalizeShape is not a fixed point:\n 1: %q\n 2: %q", shape, shape2)
		}
		if len(lifted2) != len(lifted) {
			t.Fatalf("shape arity unstable for %q: %d then %d", q, len(lifted), len(lifted2))
		}
		for i, l := range lifted2 {
			if l != nil {
				t.Fatalf("re-shaping %q lifted a literal at slot %d", shape, i)
			}
		}
		if perr == nil {
			ss, err := Parse(shape)
			if err != nil {
				t.Fatalf("original parses but shape %q does not: %v", shape, err)
			}
			if ss.NumParams != len(lifted) {
				t.Fatalf("shape %q parses to %d params, lift reported %d", shape, ss.NumParams, len(lifted))
			}
		}
	})
}
