package sql

import (
	"reflect"
	"testing"
)

func TestNormalizeShapeLifts(t *testing.T) {
	cases := []struct {
		in     string
		shape  string
		lifted []Expr
	}{
		{
			"SELECT id FROM t WHERE id = 42",
			"select id from t where id = ?",
			[]Expr{&IntLit{Value: 42}},
		},
		{
			"SELECT id FROM t WHERE price > 9.5 AND name = 'bob'",
			"select id from t where price > ? and name = ?",
			[]Expr{&FloatLit{Value: 9.5}, &StringLit{Value: "bob"}},
		},
		{
			// Left-operand literal and negative constant.
			"SELECT id FROM t WHERE 5 < id AND x > -3",
			"select id from t where ? < id and x > ?",
			[]Expr{&IntLit{Value: 5}, &IntLit{Value: -3}},
		},
		{
			// DATE literal lifts as a unit.
			"SELECT id FROM t WHERE d >= DATE '2020-01-02'",
			"select id from t where d >= ?",
			[]Expr{&DateLit{Days: 18263, Text: "2020-01-02"}},
		},
		{
			// Clause boundaries: literal before GROUP/ORDER/LIMIT lifts,
			// the LIMIT count itself does not.
			"SELECT g, COUNT(*) FROM t WHERE id = 7 GROUP BY g ORDER BY g LIMIT 10",
			"select g , count ( * ) from t where id = ? group by g order by g limit 10",
			[]Expr{&IntLit{Value: 7}},
		},
		{
			// Arithmetic subterms and SELECT-list constants stay baked.
			"SELECT price * 2 FROM t WHERE x = 1 + 2",
			"select price * 2 from t where x = 1 + 2",
			nil,
		},
		{
			// Explicit placeholders pass through as nil entries, mixing
			// with lifted literals in statement order.
			"SELECT id FROM t WHERE a = ? AND b = 5",
			"select id from t where a = ? and b = ?",
			[]Expr{nil, &IntLit{Value: 5}},
		},
	}
	for _, c := range cases {
		shape, lifted, err := NormalizeShape(c.in)
		if err != nil {
			t.Errorf("NormalizeShape(%q): %v", c.in, err)
			continue
		}
		if shape != c.shape {
			t.Errorf("NormalizeShape(%q)\n shape = %q\n want    %q", c.in, shape, c.shape)
		}
		if !reflect.DeepEqual(lifted, c.lifted) {
			t.Errorf("NormalizeShape(%q) lifted = %#v, want %#v", c.in, lifted, c.lifted)
		}
		// The shape is a fixed point: nothing further lifts.
		shape2, lifted2, err := NormalizeShape(shape)
		if err != nil || shape2 != shape {
			t.Errorf("NormalizeShape(%q) shape not a fixed point: %q, %v", c.in, shape2, err)
		}
		if len(lifted2) != len(lifted) {
			t.Errorf("NormalizeShape(%q) re-lift arity %d, want %d", c.in, len(lifted2), len(lifted))
		}
		for i, l := range lifted2 {
			if l != nil {
				t.Errorf("NormalizeShape(%q) re-lifted a literal at slot %d", c.in, i)
			}
		}
	}
}

func TestNormalizeShapeCollapsesDistinctLiterals(t *testing.T) {
	a, la, err := NormalizeShape("SELECT * FROM users WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	b, lb, err := NormalizeShape("select *  from USERS where ID = 999999")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("distinct literals did not collapse to one shape:\n%q\n%q", a, b)
	}
	if len(la) != 1 || len(lb) != 1 {
		t.Fatalf("lifted = %v / %v, want one literal each", la, lb)
	}
}

func TestNormalizeArity(t *testing.T) {
	norm, n, err := NormalizeArity("SELECT id FROM t WHERE a = ? AND s = 'quoted?mark' AND b < ?")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("arity = %d, want 2 (the '?' inside the string literal must not count)", n)
	}
	if want := "select id from t where a = ? and s = 'quoted?mark' and b < ?"; norm != want {
		t.Fatalf("norm = %q, want %q", norm, want)
	}
}

func TestParseParams(t *testing.T) {
	stmt, err := Parse("SELECT id FROM t WHERE a = ? AND ? < b")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams != 2 {
		t.Fatalf("NumParams = %d, want 2", stmt.NumParams)
	}
	p0, ok := stmt.Where[0].Right.(*Param)
	if !ok || p0.Index != 0 {
		t.Fatalf("first placeholder = %#v, want *Param{Index: 0}", stmt.Where[0].Right)
	}
	p1, ok := stmt.Where[1].Left.(*Param)
	if !ok || p1.Index != 1 {
		t.Fatalf("second placeholder = %#v, want *Param{Index: 1}", stmt.Where[1].Left)
	}
	if got := stmt.String(); got != "SELECT id FROM t WHERE a = ? AND ? < b" {
		t.Fatalf("String() = %q", got)
	}
}
