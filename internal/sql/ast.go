package sql

import (
	"fmt"
	"strings"
	"time"
)

// Expr is a scalar expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColRef names a column, optionally qualified with a table name or alias.
type ColRef struct {
	Table  string // "" when unqualified
	Column string
}

func (c *ColRef) exprNode() {}
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

func (l *IntLit) exprNode()      {}
func (l *IntLit) String() string { return fmt.Sprintf("%d", l.Value) }

// FloatLit is a decimal literal.
type FloatLit struct{ Value float64 }

func (l *FloatLit) exprNode()      {}
func (l *FloatLit) String() string { return fmt.Sprintf("%g", l.Value) }

// StringLit is a string literal.
type StringLit struct{ Value string }

func (l *StringLit) exprNode() {}
func (l *StringLit) String() string {
	// Escape embedded quotes so the rendering re-lexes to the same value.
	return "'" + strings.ReplaceAll(l.Value, "'", "''") + "'"
}

// Param is a positional bind-parameter placeholder ('?'). Index is the
// zero-based position of the placeholder in the statement text; the value
// arrives at execution time through a bind vector, so one compiled plan
// serves every constant of the same query shape.
type Param struct{ Index int }

func (p *Param) exprNode()      {}
func (p *Param) String() string { return "?" }

// DateLit is a DATE 'YYYY-MM-DD' literal, stored as days since epoch.
type DateLit struct {
	Days int64
	Text string
}

func (l *DateLit) exprNode()      {}
func (l *DateLit) String() string { return "DATE '" + l.Text + "'" }

// ParseDate converts YYYY-MM-DD to days since 1970-01-01.
func ParseDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("sql: bad date literal %q: %w", s, err)
	}
	return t.Unix() / 86400, nil
}

// BinaryOp enumerates arithmetic operators.
type BinaryOp byte

const (
	// OpAdd is +.
	OpAdd BinaryOp = '+'
	// OpSub is -.
	OpSub BinaryOp = '-'
	// OpMul is *.
	OpMul BinaryOp = '*'
	// OpDiv is /.
	OpDiv BinaryOp = '/'
)

// BinaryExpr is an arithmetic expression.
type BinaryExpr struct {
	Op          BinaryOp
	Left, Right Expr
}

func (b *BinaryExpr) exprNode() {}
func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %c %s)", b.Left, b.Op, b.Right)
}

// AggFunc enumerates aggregate functions.
type AggFunc int

const (
	// AggSum is SUM(expr).
	AggSum AggFunc = iota
	// AggCount is COUNT(expr) or COUNT(*).
	AggCount
	// AggAvg is AVG(expr).
	AggAvg
	// AggMin is MIN(expr).
	AggMin
	// AggMax is MAX(expr).
	AggMax
)

// String renders the function keyword.
func (f AggFunc) String() string {
	return [...]string{"SUM", "COUNT", "AVG", "MIN", "MAX"}[f]
}

// AggExpr is an aggregate invocation. Star is true for COUNT(*), in which
// case Arg is nil.
type AggExpr struct {
	Func AggFunc
	Arg  Expr
	Star bool
}

func (a *AggExpr) exprNode() {}
func (a *AggExpr) String() string {
	if a.Star {
		return a.Func.String() + "(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}

// CmpOp enumerates comparison operators in predicates.
type CmpOp int

const (
	// CmpEq is =.
	CmpEq CmpOp = iota
	// CmpNe is <> or !=.
	CmpNe
	// CmpLt is <.
	CmpLt
	// CmpLe is <=.
	CmpLe
	// CmpGt is >.
	CmpGt
	// CmpGe is >=.
	CmpGe
)

// String renders the operator.
func (o CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[o]
}

// Negate returns the complementary operator (for predicate pushdown).
func (o CmpOp) Negate() CmpOp {
	return [...]CmpOp{CmpNe, CmpEq, CmpGe, CmpGt, CmpLe, CmpLt}[o]
}

// Flip returns the operator with operands swapped (a op b == b flip(op) a).
func (o CmpOp) Flip() CmpOp {
	return [...]CmpOp{CmpEq, CmpNe, CmpGt, CmpGe, CmpLt, CmpLe}[o]
}

// Holds interprets a three-way comparison result (-1, 0, +1) against the
// operator — the one place the "c op 0" truth table lives; engines that
// compare generically delegate here.
func (o CmpOp) Holds(c int) bool {
	switch o {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// Predicate is one conjunct of the WHERE clause: Left op Right.
type Predicate struct {
	Op          CmpOp
	Left, Right Expr
}

func (p *Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// SelectItem is one output column: an expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

func (s *SelectItem) String() string {
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// TableRef is a FROM-clause entry with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (t *TableRef) String() string {
	if t.Alias != "" && t.Alias != t.Name {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// OrderItem is one ORDER BY key. The expression may be a ColRef naming an
// output alias.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o *OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// SelectStmt is a parsed query.
type SelectStmt struct {
	Select  []SelectItem
	From    []TableRef
	Where   []Predicate // implicit conjunction
	GroupBy []ColRef
	// Having filters aggregated groups: each conjunct compares a select
	// output (named by alias or by its rendered expression text) against a
	// constant. BETWEEN desugars into its two bounding conjuncts at parse
	// time, exactly as in WHERE.
	Having  []Predicate
	OrderBy []OrderItem
	Limit   int // -1 = no limit
	// NumParams counts the '?' placeholders in the statement; execution
	// requires a bind vector of exactly this arity.
	NumParams int
}

// String renders the statement back to SQL (normalised).
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i := range s.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.Select[i].String())
	}
	b.WriteString(" FROM ")
	for i := range s.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.From[i].String())
	}
	if len(s.Where) > 0 {
		b.WriteString(" WHERE ")
		for i := range s.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(s.Where[i].String())
		}
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.GroupBy[i].String())
		}
	}
	if len(s.Having) > 0 {
		b.WriteString(" HAVING ")
		for i := range s.Having {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(s.Having[i].String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.OrderBy[i].String())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// HasAggregates reports whether any select item contains an aggregate.
func (s *SelectStmt) HasAggregates() bool {
	for i := range s.Select {
		if ContainsAggregate(s.Select[i].Expr) {
			return true
		}
	}
	return false
}

// ContainsAggregate walks an expression for AggExpr nodes.
func ContainsAggregate(e Expr) bool {
	switch v := e.(type) {
	case *AggExpr:
		return true
	case *BinaryExpr:
		return ContainsAggregate(v.Left) || ContainsAggregate(v.Right)
	default:
		return false
	}
}

// WalkColumns invokes fn for every column reference in the expression.
func WalkColumns(e Expr, fn func(*ColRef)) {
	switch v := e.(type) {
	case *ColRef:
		fn(v)
	case *BinaryExpr:
		WalkColumns(v.Left, fn)
		WalkColumns(v.Right, fn)
	case *AggExpr:
		if v.Arg != nil {
			WalkColumns(v.Arg, fn)
		}
	}
}
