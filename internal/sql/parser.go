package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement.
func Parse(input string) (*SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("trailing input starting at %q", p.peek().Text)
	}
	stmt.NumParams = p.params
	return stmt, nil
}

type parser struct {
	toks   []Token
	pos    int
	params int // '?' placeholders seen so far, in statement order
}

func (p *parser) peek() Token { return p.toks[p.pos] }

// next consumes and returns the current token; it never advances past EOF,
// so error paths can safely keep peeking.
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}
func (p *parser) atEOF() bool   { return p.peek().Kind == TokEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

// keyword matches a case-insensitive identifier keyword without consuming
// on failure.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.Kind == TokIdent && strings.EqualFold(t.Text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s, found %q", strings.ToUpper(kw), p.peek().Text)
	}
	return nil
}

func (p *parser) symbol(sym string) bool {
	t := p.peek()
	if t.Kind == TokSymbol && t.Text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.symbol(sym) {
		return p.errorf("expected %q, found %q", sym, p.peek().Text)
	}
	return nil
}

// reserved words may not be used as aliases.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "order": true,
	"by": true, "limit": true, "and": true, "as": true, "asc": true,
	"desc": true, "sum": true, "count": true, "avg": true, "min": true,
	"max": true, "date": true, "join": true, "inner": true, "on": true,
	"having": true, "between": true,
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Select = append(stmt.Select, *item)
		if !p.symbol(",") {
			break
		}
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	// Explicit [INNER] JOIN ... ON syntax desugars at parse time into the
	// comma-list FROM plus WHERE conjuncts the planner already understands;
	// ON predicates precede WHERE predicates so '?' placeholders keep their
	// textual order. SelectStmt.String() renders the desugared form, so
	// print → re-parse is a fixed point.
	var onPreds []Predicate
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, *ref)
		for {
			if p.keyword("inner") {
				if err := p.expectKeyword("join"); err != nil {
					return nil, err
				}
			} else if !p.keyword("join") {
				break
			}
			jref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			stmt.From = append(stmt.From, *jref)
			if err := p.expectKeyword("on"); err != nil {
				return nil, err
			}
			for {
				conds, err := p.parseCond()
				if err != nil {
					return nil, err
				}
				onPreds = append(onPreds, conds...)
				if !p.keyword("and") {
					break
				}
			}
		}
		if !p.symbol(",") {
			break
		}
	}

	where, err2 := p.parseWhere()
	if err2 != nil {
		return nil, err2
	}
	stmt.Where = append(onPreds, where...)

	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, *col)
			if !p.symbol(",") {
				break
			}
		}
	}

	if p.keyword("having") {
		for {
			conds, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			stmt.Having = append(stmt.Having, conds...)
			if !p.keyword("and") {
				break
			}
		}
	}

	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.keyword("desc") {
				item.Desc = true
			} else {
				p.keyword("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.symbol(",") {
				break
			}
		}
	}

	if p.keyword("limit") {
		t := p.next()
		if t.Kind != TokNumber {
			return nil, p.errorf("LIMIT expects a number, found %q", t.Text)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT value %q", t.Text)
		}
		stmt.Limit = n
	}

	return stmt, nil
}

func (p *parser) parseSelectItem() (*SelectItem, error) {
	// Bare * selects all columns; represented as a ColRef with Column "*".
	if p.symbol("*") {
		return &SelectItem{Expr: &ColRef{Column: "*"}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	if p.keyword("as") {
		t := p.next()
		if t.Kind != TokIdent {
			return nil, p.errorf("AS expects an identifier, found %q", t.Text)
		}
		item.Alias = strings.ToLower(t.Text)
	} else if t := p.peek(); t.Kind == TokIdent && !reserved[strings.ToLower(t.Text)] {
		p.pos++
		item.Alias = strings.ToLower(t.Text)
	}
	return item, nil
}

func (p *parser) parseTableRef() (*TableRef, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return nil, p.errorf("expected table name, found %q", t.Text)
	}
	ref := &TableRef{Name: strings.ToLower(t.Text)}
	if p.keyword("as") {
		a := p.next()
		if a.Kind != TokIdent {
			return nil, p.errorf("AS expects an identifier, found %q", a.Text)
		}
		ref.Alias = strings.ToLower(a.Text)
	} else if a := p.peek(); a.Kind == TokIdent && !reserved[strings.ToLower(a.Text)] {
		p.pos++
		ref.Alias = strings.ToLower(a.Text)
	}
	if ref.Alias == "" {
		ref.Alias = ref.Name
	}
	return ref, nil
}

// parseCond parses one condition of a WHERE/ON/HAVING conjunction: a
// comparison predicate, or a BETWEEN range which desugars into its two
// bounding conjuncts (lo <= x AND x <= hi rendered as x >= lo AND
// x <= hi), so downstream layers see only simple predicates.
func (p *parser) parseCond() ([]Predicate, error) {
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.keyword("between") {
		// parseExpr stops at the AND keyword (an identifier, not an
		// arithmetic symbol), so the low bound parses cleanly.
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return []Predicate{
			{Op: CmpGe, Left: left, Right: lo},
			{Op: CmpLe, Left: left, Right: hi},
		}, nil
	}
	t := p.next()
	if t.Kind != TokSymbol {
		return nil, p.errorf("expected comparison operator, found %q", t.Text)
	}
	var op CmpOp
	switch t.Text {
	case "=":
		op = CmpEq
	case "<>", "!=":
		op = CmpNe
	case "<":
		op = CmpLt
	case "<=":
		op = CmpLe
	case ">":
		op = CmpGt
	case ">=":
		op = CmpGe
	default:
		return nil, p.errorf("unknown comparison operator %q", t.Text)
	}
	right, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return []Predicate{{Op: op, Left: left, Right: right}}, nil
}

// Expression grammar:
//
//	expr   := term (('+'|'-') term)*
//	term   := factor (('*'|'/') factor)*
//	factor := number | string | DATE 'x' | agg '(' ... ')' | colref | '(' expr ')' | '-' factor
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.symbol("+"):
			op = OpAdd
		case p.symbol("-"):
			op = OpSub
		default:
			return left, nil
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.symbol("*"):
			op = OpMul
		case p.symbol("/"):
			op = OpDiv
		default:
			return left, nil
		}
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

var aggFuncs = map[string]AggFunc{
	"sum": AggSum, "count": AggCount, "avg": AggAvg, "min": AggMin, "max": AggMax,
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		if strings.Contains(t.Text, ".") {
			v, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &FloatLit{Value: v}, nil
		}
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &IntLit{Value: v}, nil

	case t.Kind == TokString:
		p.pos++
		return &StringLit{Value: t.Text}, nil

	case t.Kind == TokSymbol && t.Text == "?":
		p.pos++
		e := &Param{Index: p.params}
		p.params++
		return e, nil

	case t.Kind == TokSymbol && t.Text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.Kind == TokSymbol && t.Text == "-":
		p.pos++
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		switch lit := e.(type) {
		case *IntLit:
			return &IntLit{Value: -lit.Value}, nil
		case *FloatLit:
			return &FloatLit{Value: -lit.Value}, nil
		default:
			return &BinaryExpr{Op: OpSub, Left: &IntLit{Value: 0}, Right: e}, nil
		}

	case t.Kind == TokIdent && strings.EqualFold(t.Text, "date"):
		p.pos++
		lit := p.next()
		if lit.Kind != TokString {
			return nil, p.errorf("DATE expects a string literal, found %q", lit.Text)
		}
		days, err := ParseDate(lit.Text)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return &DateLit{Days: days, Text: lit.Text}, nil

	case t.Kind == TokIdent:
		if fn, isAgg := aggFuncs[strings.ToLower(t.Text)]; isAgg {
			save := p.save()
			p.pos++
			if p.symbol("(") {
				agg := &AggExpr{Func: fn}
				if p.symbol("*") {
					if fn != AggCount {
						return nil, p.errorf("%s(*) is only valid for COUNT", fn)
					}
					agg.Star = true
				} else {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					agg.Arg = arg
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return agg, nil
			}
			p.restore(save)
		}
		return p.parseColRef()

	default:
		return nil, p.errorf("unexpected token %q in expression", t.Text)
	}
}

func (p *parser) parseColRef() (*ColRef, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return nil, p.errorf("expected column name, found %q", t.Text)
	}
	ref := &ColRef{Column: strings.ToLower(t.Text)}
	if p.symbol(".") {
		c := p.next()
		if c.Kind != TokIdent {
			return nil, p.errorf("expected column after %q., found %q", t.Text, c.Text)
		}
		ref.Table = ref.Column
		ref.Column = strings.ToLower(c.Text)
	}
	return ref, nil
}
