package sql

import (
	"strings"
)

// Normalize renders a query as a canonical token stream: identifiers are
// lowercased (matching the parser, which resolves names case-insensitively),
// whitespace and comments collapse to single separators, and string
// literals are re-quoted with escapes restored. Two queries that differ
// only in case or spacing normalise identically, so the plan cache can key
// compiled queries on the normalised text without parsing or planning.
func Normalize(query string) (string, error) {
	toks, err := Lex(query)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.Grow(len(query))
	for i, t := range toks {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch t.Kind {
		case TokIdent:
			b.WriteString(strings.ToLower(t.Text))
		case TokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
			b.WriteByte('\'')
		default:
			b.WriteString(t.Text)
		}
	}
	return b.String(), nil
}
