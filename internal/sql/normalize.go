package sql

import (
	"strconv"
	"strings"
)

// Normalize renders a query as a canonical token stream: identifiers are
// lowercased (matching the parser, which resolves names case-insensitively),
// whitespace and comments collapse to single separators, and string
// literals are re-quoted with escapes restored. Two queries that differ
// only in case or spacing normalise identically, so the plan cache can key
// compiled queries on the normalised text without parsing or planning.
func Normalize(query string) (string, error) {
	norm, _, err := NormalizeArity(query)
	return norm, err
}

// NormalizeArity normalises like Normalize and additionally reports the
// statement's bind arity: the number of '?' placeholder tokens. The plan
// cache includes the arity in its key so two shapes can never collide on
// text alone.
func NormalizeArity(query string) (string, int, error) {
	toks, err := Lex(query)
	if err != nil {
		return "", 0, err
	}
	arity := 0
	for _, t := range toks {
		if t.Kind == TokSymbol && t.Text == "?" {
			arity++
		}
	}
	return renderToks(toks, len(query)), arity, nil
}

func renderToks(toks []Token, sizeHint int) string {
	var b strings.Builder
	b.Grow(sizeHint)
	for i, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		writeTok(&b, t)
	}
	return b.String()
}

func writeTok(b *strings.Builder, t Token) {
	switch t.Kind {
	case TokIdent:
		b.WriteString(asciiLower(t.Text))
	case TokString:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
		b.WriteByte('\'')
	default:
		b.WriteString(t.Text)
	}
}

// asciiLower lowercases ASCII letters only. Full Unicode case mapping can
// grow combining marks (U+0130 lowercases to "i" + U+0307) that are not
// identifier characters, so the normalised text would no longer lex —
// breaking Normalize's fixed-point property. The parser applies its own
// case mapping to original and normalised text alike, so ASCII-only
// lowering here preserves parse equivalence.
func asciiLower(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'A' && r <= 'Z' {
			return r + ('a' - 'A')
		}
		return r
	}, s)
}

// NormalizeShape is Normalize's auto-parameterization mode: it collapses a
// query to its parameterized *shape*. Literals that stand as a whole
// comparison operand inside the WHERE clause are lifted out of the text,
// replaced with '?' placeholders, and returned (in placeholder order) as
// literal expression nodes. Placeholders already present in the input are
// preserved and reported as nil entries, to be filled from caller-supplied
// arguments. Two queries that differ only in those constants therefore
// normalise to the same shape, so one compiled plan in the cache serves
// the entire query family.
//
// The lift is deliberately conservative — a literal participating in
// arithmetic (x = 1 + 2), a SELECT-list constant, or a LIMIT count is left
// in place, because those constants shape the plan or the output and must
// stay part of the cache identity. Like Normalize, the transformation is
// a single lexer pass: no parsing or planning happens on the hit path.
//
// NormalizeShape is a fixed point: applying it to a returned shape lifts
// nothing further and returns the shape unchanged.
func NormalizeShape(query string) (string, []Expr, error) {
	toks, err := Lex(query)
	if err != nil {
		return "", nil, err
	}
	var b strings.Builder
	b.Grow(len(query))
	var lifted []Expr

	inWhere := false
	first := true
	emit := func(t Token) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		writeTok(&b, t)
	}
	emitPlaceholder := func(e Expr) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteByte('?')
		lifted = append(lifted, e)
	}

	for i := 0; i < len(toks) && toks[i].Kind != TokEOF; {
		t := toks[i]
		if t.Kind == TokIdent {
			switch {
			case strings.EqualFold(t.Text, "where"):
				inWhere = true
			case strings.EqualFold(t.Text, "group"),
				strings.EqualFold(t.Text, "order"),
				strings.EqualFold(t.Text, "limit"):
				inWhere = false
			}
		}
		if t.Kind == TokSymbol && t.Text == "?" {
			emitPlaceholder(nil)
			i++
			continue
		}
		if inWhere {
			if lit, width := literalUnit(toks, i); lit != nil && liftable(toks, i, width) {
				emitPlaceholder(lit)
				i += width
				continue
			}
		}
		emit(t)
		i++
	}
	return b.String(), lifted, nil
}

var cmpSymbols = map[string]bool{
	"=": true, "<": true, "<=": true, ">": true, ">=": true, "<>": true, "!=": true,
}

func isCmp(t Token) bool { return t.Kind == TokSymbol && cmpSymbols[t.Text] }
func isKw(t Token, kws ...string) bool {
	if t.Kind != TokIdent {
		return false
	}
	for _, kw := range kws {
		if strings.EqualFold(t.Text, kw) {
			return true
		}
	}
	return false
}

// literalUnit recognises a literal starting at toks[i] and returns its
// parsed expression plus the number of tokens it spans, or (nil, 0). Units:
// a number, a string, DATE 'x', or a unary-minus number.
func literalUnit(toks []Token, i int) (Expr, int) {
	t := toks[i]
	switch {
	case t.Kind == TokNumber:
		if e := numberLit(t.Text, false); e != nil {
			return e, 1
		}
	case t.Kind == TokString:
		return &StringLit{Value: t.Text}, 1
	case t.Kind == TokIdent && strings.EqualFold(t.Text, "date"):
		if i+1 < len(toks) && toks[i+1].Kind == TokString {
			if days, err := ParseDate(toks[i+1].Text); err == nil {
				return &DateLit{Days: days, Text: toks[i+1].Text}, 2
			}
		}
	case t.Kind == TokSymbol && t.Text == "-":
		if i+1 < len(toks) && toks[i+1].Kind == TokNumber {
			if e := numberLit(toks[i+1].Text, true); e != nil {
				return e, 2
			}
		}
	}
	return nil, 0
}

// numberLit parses a number token exactly as the parser would; a token the
// parser would reject (e.g. "1.2.3") returns nil so the text is left
// untouched and the eventual parse error is preserved.
func numberLit(text string, neg bool) Expr {
	if strings.Contains(text, ".") {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil
		}
		if neg {
			v = -v
		}
		return &FloatLit{Value: v}
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil
	}
	if neg {
		v = -v
	}
	return &IntLit{Value: v}
}

// liftable reports whether the literal unit spanning toks[i:i+width] is a
// whole comparison operand: either the right operand (preceded by a
// comparison operator, followed by AND / the next clause / end of input)
// or the left operand (preceded by WHERE or AND, followed by a comparison
// operator). Anything else — arithmetic subterms in particular — stays a
// literal so the rewrite never changes what the statement computes.
func liftable(toks []Token, i, width int) bool {
	var prev Token
	if i > 0 {
		prev = toks[i-1]
	} else {
		prev = Token{Kind: TokEOF}
	}
	next := toks[i+width] // Lex guarantees a trailing TokEOF sentinel

	rightOperand := isCmp(prev) &&
		(next.Kind == TokEOF || isKw(next, "and", "group", "order", "limit"))
	leftOperand := isKw(prev, "where", "and") && isCmp(next)
	// A unary-minus unit is only unambiguous after a comparison operator
	// or at the start of an operand; both positions are covered above.
	return rightOperand || leftOperand
}
