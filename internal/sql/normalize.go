package sql

import (
	"strconv"
	"strings"
)

// Normalize renders a query as a canonical token stream: identifiers are
// lowercased (matching the parser, which resolves names case-insensitively),
// whitespace and comments collapse to single separators, and string
// literals are re-quoted with escapes restored. Two queries that differ
// only in case or spacing normalise identically, so the plan cache can key
// compiled queries on the normalised text without parsing or planning.
func Normalize(query string) (string, error) {
	norm, _, err := NormalizeArity(query)
	return norm, err
}

// NormalizeArity normalises like Normalize and additionally reports the
// statement's bind arity: the number of '?' placeholder tokens. The plan
// cache includes the arity in its key so two shapes can never collide on
// text alone.
func NormalizeArity(query string) (string, int, error) {
	toks, err := Lex(query)
	if err != nil {
		return "", 0, err
	}
	arity := 0
	for _, t := range toks {
		if t.Kind == TokSymbol && t.Text == "?" {
			arity++
		}
	}
	return renderToks(toks, len(query)), arity, nil
}

func renderToks(toks []Token, sizeHint int) string {
	var b strings.Builder
	b.Grow(sizeHint)
	for i, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		writeTok(&b, t)
	}
	return b.String()
}

func writeTok(b *strings.Builder, t Token) {
	switch t.Kind {
	case TokIdent:
		b.WriteString(asciiLower(t.Text))
	case TokString:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
		b.WriteByte('\'')
	default:
		b.WriteString(t.Text)
	}
}

// asciiLower lowercases ASCII letters only. Full Unicode case mapping can
// grow combining marks (U+0130 lowercases to "i" + U+0307) that are not
// identifier characters, so the normalised text would no longer lex —
// breaking Normalize's fixed-point property. The parser applies its own
// case mapping to original and normalised text alike, so ASCII-only
// lowering here preserves parse equivalence.
func asciiLower(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'A' && r <= 'Z' {
			return r + ('a' - 'A')
		}
		return r
	}, s)
}

// NormalizeShape is Normalize's auto-parameterization mode: it collapses a
// query to its parameterized *shape*. Literals that stand as a whole
// comparison operand inside the WHERE clause are lifted out of the text,
// replaced with '?' placeholders, and returned (in placeholder order) as
// literal expression nodes. Placeholders already present in the input are
// preserved and reported as nil entries, to be filled from caller-supplied
// arguments. Two queries that differ only in those constants therefore
// normalise to the same shape, so one compiled plan in the cache serves
// the entire query family.
//
// The lift is deliberately conservative — a literal participating in
// arithmetic (x = 1 + 2), a SELECT-list constant, or a LIMIT count is left
// in place, because those constants shape the plan or the output and must
// stay part of the cache identity. Like Normalize, the transformation is
// a single lexer pass: no parsing or planning happens on the hit path.
//
// NormalizeShape is a fixed point: applying it to a returned shape lifts
// nothing further and returns the shape unchanged.
func NormalizeShape(query string) (string, []Expr, error) {
	var b ShapeBuf
	if err := b.Shape(query); err != nil {
		return "", nil, err
	}
	var lifted []Expr
	for _, l := range b.Lits {
		lifted = append(lifted, l.Expr())
	}
	return string(b.Out), lifted, nil
}

// NormBuf holds the reusable buffers of repeated plain normalization —
// the token scratch and the rendered bytes — so a hot caller (the write
// path's cache-key computation) normalises a statement with no
// allocations. It is Normalize/NormalizeArity with pooled memory, without
// shape extraction.
type NormBuf struct {
	// Out is the normalised statement, rendered as bytes.
	Out []byte

	toks []Token
}

// Normalize renders query's canonical token stream into the buffer and
// reports its placeholder arity.
func (b *NormBuf) Normalize(query string) (arity int, err error) {
	toks, err := LexInto(b.toks, query)
	b.toks = toks
	if err != nil {
		return 0, err
	}
	out := b.Out[:0]
	if cap(out) < len(query) {
		out = make([]byte, 0, len(query)+16)
	}
	for _, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if t.Kind == TokSymbol && t.Text == "?" {
			arity++
		}
		out = appendSep(out)
		out = appendTok(out, t)
	}
	b.Out = out
	return arity, nil
}

// LitKind discriminates the value held by a LiftedLit.
type LitKind uint8

const (
	// LitNone marks a '?' placeholder that was already present in the
	// input; its value comes from caller-supplied arguments.
	LitNone LitKind = iota
	// LitInt is an integer literal.
	LitInt
	// LitFloat is a decimal literal.
	LitFloat
	// LitString is a string literal.
	LitString
	// LitDate is a DATE 'YYYY-MM-DD' literal (I holds the day number,
	// S the original text).
	LitDate
)

// LiftedLit is one bind-vector entry produced by shape extraction, in a
// pointer-free representation so a whole lift fits in one reused slice.
type LiftedLit struct {
	Kind LitKind
	I    int64
	F    float64
	S    string
}

// Expr converts the entry to the AST literal NormalizeShape reports; nil
// for LitNone placeholders.
func (l LiftedLit) Expr() Expr {
	switch l.Kind {
	case LitInt:
		return &IntLit{Value: l.I}
	case LitFloat:
		return &FloatLit{Value: l.F}
	case LitString:
		return &StringLit{Value: l.S}
	case LitDate:
		return &DateLit{Days: l.I, Text: l.S}
	}
	return nil
}

// ShapeBuf holds the reusable buffers of repeated shape extraction: the
// token scratch, the rendered shape bytes, and the lifted literals. A
// warm serving path keeps one in a pool so collapsing a statement to its
// shape allocates nothing.
type ShapeBuf struct {
	// Out is the normalised shape, rendered as bytes.
	Out []byte
	// Lits are the bind-vector entries, in placeholder order.
	Lits []LiftedLit

	toks []Token
}

// Shape collapses query to its parameterized shape into the buffer,
// implementing exactly the transformation NormalizeShape documents.
func (b *ShapeBuf) Shape(query string) error {
	toks, err := LexInto(b.toks, query)
	b.toks = toks
	if err != nil {
		return err
	}
	out := b.Out[:0]
	if cap(out) < len(query) {
		out = make([]byte, 0, len(query)+16)
	}
	lits := b.Lits[:0]

	inWhere := false
	for i := 0; i < len(toks) && toks[i].Kind != TokEOF; {
		t := toks[i]
		if t.Kind == TokIdent {
			switch {
			case strings.EqualFold(t.Text, "where"):
				inWhere = true
			case strings.EqualFold(t.Text, "group"),
				strings.EqualFold(t.Text, "order"),
				strings.EqualFold(t.Text, "limit"):
				inWhere = false
			}
		}
		if t.Kind == TokSymbol && t.Text == "?" {
			out = appendSep(out)
			out = append(out, '?')
			lits = append(lits, LiftedLit{Kind: LitNone})
			i++
			continue
		}
		if inWhere {
			if lit, width, ok := litUnit(toks, i); ok && liftable(toks, i, width) {
				out = appendSep(out)
				out = append(out, '?')
				lits = append(lits, lit)
				i += width
				continue
			}
		}
		out = appendSep(out)
		out = appendTok(out, t)
		i++
	}
	b.Out, b.Lits = out, lits
	return nil
}

func appendSep(out []byte) []byte {
	if len(out) > 0 {
		return append(out, ' ')
	}
	return out
}

// appendTok renders one token in normalised form: identifiers lowercased
// (ASCII only, matching asciiLower), strings re-quoted with escapes
// restored.
func appendTok(out []byte, t Token) []byte {
	switch t.Kind {
	case TokIdent:
		for i := 0; i < len(t.Text); i++ {
			c := t.Text[i]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			out = append(out, c)
		}
	case TokString:
		out = append(out, '\'')
		for i := 0; i < len(t.Text); i++ {
			c := t.Text[i]
			if c == '\'' {
				out = append(out, '\'')
			}
			out = append(out, c)
		}
		out = append(out, '\'')
	default:
		out = append(out, t.Text...)
	}
	return out
}

var cmpSymbols = map[string]bool{
	"=": true, "<": true, "<=": true, ">": true, ">=": true, "<>": true, "!=": true,
}

func isCmp(t Token) bool { return t.Kind == TokSymbol && cmpSymbols[t.Text] }
func isKw(t Token, kws ...string) bool {
	if t.Kind != TokIdent {
		return false
	}
	for _, kw := range kws {
		if strings.EqualFold(t.Text, kw) {
			return true
		}
	}
	return false
}

// litUnit recognises a literal starting at toks[i] and returns its value
// plus the number of tokens it spans, or ok == false. Units: a number, a
// string, DATE 'x', or a unary-minus number.
func litUnit(toks []Token, i int) (LiftedLit, int, bool) {
	t := toks[i]
	switch {
	case t.Kind == TokNumber:
		if l, ok := numberLit(t.Text, false); ok {
			return l, 1, true
		}
	case t.Kind == TokString:
		return LiftedLit{Kind: LitString, S: t.Text}, 1, true
	case t.Kind == TokIdent && strings.EqualFold(t.Text, "date"):
		if i+1 < len(toks) && toks[i+1].Kind == TokString {
			if days, err := ParseDate(toks[i+1].Text); err == nil {
				return LiftedLit{Kind: LitDate, I: days, S: toks[i+1].Text}, 2, true
			}
		}
	case t.Kind == TokSymbol && t.Text == "-":
		if i+1 < len(toks) && toks[i+1].Kind == TokNumber {
			if l, ok := numberLit(toks[i+1].Text, true); ok {
				return l, 2, true
			}
		}
	}
	return LiftedLit{}, 0, false
}

// numberLit parses a number token exactly as the parser would; a token
// the parser would reject (e.g. "1.2.3") reports ok == false so the text
// is left untouched and the eventual parse error is preserved.
func numberLit(text string, neg bool) (LiftedLit, bool) {
	if strings.Contains(text, ".") {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return LiftedLit{}, false
		}
		if neg {
			v = -v
		}
		return LiftedLit{Kind: LitFloat, F: v}, true
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return LiftedLit{}, false
	}
	if neg {
		v = -v
	}
	return LiftedLit{Kind: LitInt, I: v}, true
}

// liftable reports whether the literal unit spanning toks[i:i+width] is a
// whole comparison operand: either the right operand (preceded by a
// comparison operator, followed by AND / the next clause / end of input)
// or the left operand (preceded by WHERE or AND, followed by a comparison
// operator). Anything else — arithmetic subterms in particular — stays a
// literal so the rewrite never changes what the statement computes.
func liftable(toks []Token, i, width int) bool {
	var prev Token
	if i > 0 {
		prev = toks[i-1]
	} else {
		prev = Token{Kind: TokEOF}
	}
	next := toks[i+width] // Lex guarantees a trailing TokEOF sentinel

	rightOperand := isCmp(prev) &&
		(next.Kind == TokEOF || isKw(next, "and", "group", "order", "limit"))
	leftOperand := isKw(prev, "where", "and") && isCmp(next)
	// A unary-minus unit is only unambiguous after a comparison operator
	// or at the start of an operand; both positions are covered above.
	return rightOperand || leftOperand
}

// RedactShape renders a statement with every literal token — numbers and
// strings alike, in any clause — replaced by '?', and reports the
// statement's original placeholder arity. This is the slow-query log's
// spelling: unlike NormalizeShape (which lifts only whole comparison
// operands), redaction guarantees no data value from any statement kind
// (INSERT row literals included) can reach a log line.
func RedactShape(query string) (string, int, error) {
	toks, err := Lex(query)
	if err != nil {
		return "", 0, err
	}
	arity := 0
	for i := range toks {
		t := &toks[i]
		if t.Kind == TokSymbol && t.Text == "?" {
			arity++
		}
		if t.Kind == TokNumber || t.Kind == TokString {
			t.Kind = TokSymbol
			t.Text = "?"
		}
	}
	return renderToks(toks, len(query)), arity, nil
}
