package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Contains(5) {
		t.Error("empty tree Contains(5)")
	}
	if got := tr.Search(5); len(got) != 0 {
		t.Errorf("Search on empty tree = %v", got)
	}
}

func TestInsertAndSearch(t *testing.T) {
	tr := New()
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i*3, RID{Page: int32(i), Slot: int32(i % 7)})
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tr.Len())
	}
	for i := int64(0); i < 1000; i++ {
		rids := tr.Search(i * 3)
		if len(rids) != 1 {
			t.Fatalf("Search(%d) = %v, want one entry", i*3, rids)
		}
		if rids[0].Page != int32(i) {
			t.Fatalf("Search(%d) page = %d, want %d", i*3, rids[0].Page, i)
		}
	}
	if tr.Contains(1) || tr.Contains(2) {
		t.Error("Contains reports keys never inserted")
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := New()
	for s := int32(0); s < 50; s++ {
		tr.Insert(99, RID{Page: 1, Slot: s})
	}
	rids := tr.Search(99)
	if len(rids) != 50 {
		t.Fatalf("Search(99) found %d entries, want 50", len(rids))
	}
	slots := map[int32]bool{}
	for _, r := range rids {
		slots[r.Slot] = true
	}
	if len(slots) != 50 {
		t.Errorf("duplicate entries lost slots: %d distinct", len(slots))
	}
}

func TestRandomInsertOrderedIteration(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	keys := make([]int64, 20000)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
		tr.Insert(keys[i], RID{Page: int32(i), Slot: 0})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	i := 0
	tr.Ascend(func(k int64, _ RID) bool {
		if k != keys[i] {
			t.Fatalf("Ascend position %d: key %d, want %d", i, k, keys[i])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("Ascend visited %d entries, want %d", i, len(keys))
	}
	if h := tr.Height(); h < 2 || h > 5 {
		t.Errorf("unexpected height %d for 20k entries", h)
	}
}

func TestRange(t *testing.T) {
	tr := New()
	for i := int64(0); i < 500; i++ {
		tr.Insert(i, RID{Page: int32(i)})
	}
	var got []int64
	tr.Range(100, 199, func(k int64, _ RID) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 100 {
		t.Fatalf("Range(100,199) visited %d keys", len(got))
	}
	if got[0] != 100 || got[99] != 199 {
		t.Errorf("Range bounds wrong: first %d last %d", got[0], got[99])
	}
	// Early termination.
	count := 0
	tr.Range(0, 499, func(int64, RID) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early-stop Range visited %d", count)
	}
	// Empty range.
	count = 0
	tr.Range(1000, 2000, func(int64, RID) bool { count++; return true })
	if count != 0 {
		t.Errorf("out-of-domain Range visited %d", count)
	}
}

func TestDescendingInsert(t *testing.T) {
	tr := New()
	for i := int64(9999); i >= 0; i-- {
		tr.Insert(i, RID{Page: int32(i)})
	}
	prev := int64(-1)
	n := 0
	tr.Ascend(func(k int64, rid RID) bool {
		if k <= prev {
			t.Fatalf("order violation: %d after %d", k, prev)
		}
		if int64(rid.Page) != k {
			t.Fatalf("rid mismatch at key %d: %v", k, rid)
		}
		prev = k
		n++
		return true
	})
	if n != 10000 {
		t.Fatalf("visited %d entries", n)
	}
}

func TestFractalPageGrouping(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100000; i++ {
		tr.Insert(i, RID{})
	}
	// Nodes per page must be exactly 4: pages = ceil(nodes/4), and with
	// 100k ascending inserts leaves are ~50% full (eager split at 63),
	// so node count is roughly 100000/31.
	nodes := tr.used
	wantPages := (nodes + NodesPerPage - 1) / NodesPerPage
	if tr.NumPages() != wantPages {
		t.Errorf("NumPages = %d, want %d for %d nodes", tr.NumPages(), wantPages, nodes)
	}
}

func TestOrderedIterationQuick(t *testing.T) {
	f := func(keys []int64) bool {
		tr := New()
		for i, k := range keys {
			tr.Insert(k, RID{Page: int32(i)})
		}
		if tr.Len() != len(keys) {
			return false
		}
		sorted := append([]int64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		i := 0
		ok := true
		tr.Ascend(func(k int64, _ RID) bool {
			if i >= len(sorted) || k != sorted[i] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(sorted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSearchFindsAllDuplicatesQuick(t *testing.T) {
	f := func(dups uint8, key int64) bool {
		tr := New()
		n := int(dups%200) + 1
		for i := 0; i < n; i++ {
			tr.Insert(key, RID{Slot: int32(i)})
		}
		// Surround with noise.
		tr.Insert(key-1, RID{})
		tr.Insert(key+1, RID{})
		return len(tr.Search(key)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
