// Package btree implements the memory-efficient index HIQUE uses: a fractal
// B+-tree (Chen et al., SIGMOD 2002) in which each 4096-byte physical page
// is divided into four 1024-byte tree nodes (paper §IV). Grouping nodes
// into pages keeps parent and children physically close, improving both
// cache and disk behaviour.
//
// Keys are int64 (the engine's join/index attributes are integers); values
// are RIDs addressing a tuple in a heap table. Duplicate keys are allowed.
package btree

import (
	"encoding/binary"
	"fmt"
)

const (
	// NodeSize is the in-page node size: four nodes per 4096-byte page.
	NodeSize = 1024
	// NodesPerPage is the fractal grouping factor.
	NodesPerPage = 4
	// PageSize is the physical page size holding NodesPerPage nodes.
	PageSize = NodeSize * NodesPerPage

	nodeHeaderSize = 16
	// Leaf entries are key (8) + RID (8).
	leafCapacity = (NodeSize - nodeHeaderSize) / 16 // 63
	// Internal nodes hold n keys (8 bytes) and n+1 children (4 bytes).
	internalCapacity = (NodeSize - nodeHeaderSize - 4) / 12 // 83
)

// RID addresses a tuple: heap page number and slot within the page.
type RID struct {
	Page int32
	Slot int32
}

func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// node header layout (within its 1024-byte slot):
//
//	[0]    flags (bit 0: leaf)
//	[1:3]  reserved
//	[4:8]  numKeys
//	[8:12] next node id (leaves only; 0xFFFFFFFF = none)
//	[12:16] reserved
const invalidNode = ^uint32(0)

// Tree is a fractal B+-tree. The zero value is not usable; call New.
type Tree struct {
	pages [][]byte // each PageSize bytes, holding NodesPerPage nodes
	used  int      // number of allocated nodes
	root  uint32
	size  int // number of stored entries
}

// New creates an empty tree.
func New() *Tree {
	t := &Tree{}
	root := t.allocNode(true)
	t.root = root
	return t
}

// Len returns the number of entries in the tree.
func (t *Tree) Len() int { return t.size }

// NumPages returns the number of physical pages backing the tree.
func (t *Tree) NumPages() int { return len(t.pages) }

// allocNode reserves a node slot, growing the page list as needed, and
// returns its id.
func (t *Tree) allocNode(leaf bool) uint32 {
	if t.used%NodesPerPage == 0 {
		t.pages = append(t.pages, make([]byte, PageSize))
	}
	id := uint32(t.used)
	t.used++
	n := t.node(id)
	if leaf {
		n[0] = 1
	} else {
		n[0] = 0
	}
	binary.LittleEndian.PutUint32(n[4:8], 0)
	binary.LittleEndian.PutUint32(n[8:12], invalidNode)
	return id
}

// node returns the 1024-byte slice for node id.
func (t *Tree) node(id uint32) []byte {
	page := int(id) / NodesPerPage
	slot := int(id) % NodesPerPage
	return t.pages[page][slot*NodeSize : (slot+1)*NodeSize : (slot+1)*NodeSize]
}

func isLeaf(n []byte) bool { return n[0]&1 == 1 }

func numKeys(n []byte) int { return int(binary.LittleEndian.Uint32(n[4:8])) }

func setNumKeys(n []byte, k int) { binary.LittleEndian.PutUint32(n[4:8], uint32(k)) }

func nextLeaf(n []byte) uint32 { return binary.LittleEndian.Uint32(n[8:12]) }

func setNextLeaf(n []byte, id uint32) { binary.LittleEndian.PutUint32(n[8:12], id) }

// Leaf layout: entries of (key int64, rid 8 bytes) starting at headerSize.
func leafKey(n []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(n[nodeHeaderSize+i*16:]))
}

func leafRID(n []byte, i int) RID {
	off := nodeHeaderSize + i*16 + 8
	return RID{
		Page: int32(binary.LittleEndian.Uint32(n[off:])),
		Slot: int32(binary.LittleEndian.Uint32(n[off+4:])),
	}
}

func setLeafEntry(n []byte, i int, key int64, rid RID) {
	off := nodeHeaderSize + i*16
	binary.LittleEndian.PutUint64(n[off:], uint64(key))
	binary.LittleEndian.PutUint32(n[off+8:], uint32(rid.Page))
	binary.LittleEndian.PutUint32(n[off+12:], uint32(rid.Slot))
}

func copyLeafEntries(dst []byte, dstIdx int, src []byte, srcIdx, count int) {
	copy(dst[nodeHeaderSize+dstIdx*16:nodeHeaderSize+(dstIdx+count)*16],
		src[nodeHeaderSize+srcIdx*16:nodeHeaderSize+(srcIdx+count)*16])
}

// Internal layout: keys at headerSize (8 bytes each, internalCapacity max),
// children after the key area (4 bytes each, internalCapacity+1 max).
const childArrayOffset = nodeHeaderSize + internalCapacity*8

func internalKey(n []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(n[nodeHeaderSize+i*8:]))
}

func setInternalKey(n []byte, i int, key int64) {
	binary.LittleEndian.PutUint64(n[nodeHeaderSize+i*8:], uint64(key))
}

func childID(n []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(n[childArrayOffset+i*4:])
}

func setChildID(n []byte, i int, id uint32) {
	binary.LittleEndian.PutUint32(n[childArrayOffset+i*4:], id)
}

// Insert adds a key/RID pair. Duplicate keys are allowed and preserved.
func (t *Tree) Insert(key int64, rid RID) {
	midKey, newChild, split := t.insertInto(t.root, key, rid)
	if split {
		newRoot := t.allocNode(false)
		n := t.node(newRoot)
		setNumKeys(n, 1)
		setInternalKey(n, 0, midKey)
		setChildID(n, 0, t.root)
		setChildID(n, 1, newChild)
		t.root = newRoot
	}
	t.size++
}

// insertInto descends to the right leaf and inserts, propagating splits
// upward. Returns (separator key, new right sibling id, true) when the
// node split.
func (t *Tree) insertInto(id uint32, key int64, rid RID) (int64, uint32, bool) {
	n := t.node(id)
	if isLeaf(n) {
		return t.insertIntoLeaf(id, key, rid)
	}
	k := numKeys(n)
	// Find child: first key greater than target descends left of it.
	lo, hi := 0, k
	for lo < hi {
		mid := (lo + hi) / 2
		if internalKey(n, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	midKey, newChild, split := t.insertInto(childID(n, lo), key, rid)
	if !split {
		return 0, 0, false
	}
	// Re-fetch: allocNode may have grown the page slice backing array,
	// but pages themselves are stable; still, keep n fresh for clarity.
	n = t.node(id)
	k = numKeys(n)
	// Shift keys and children right of position lo.
	for i := k; i > lo; i-- {
		setInternalKey(n, i, internalKey(n, i-1))
	}
	for i := k + 1; i > lo+1; i-- {
		setChildID(n, i, childID(n, i-1))
	}
	setInternalKey(n, lo, midKey)
	setChildID(n, lo+1, newChild)
	setNumKeys(n, k+1)
	if k+1 <= internalCapacity {
		if k+1 < internalCapacity {
			return 0, 0, false
		}
		// Node is exactly full: split eagerly to keep the shift
		// logic simple.
	}
	return t.splitInternal(id)
}

func (t *Tree) insertIntoLeaf(id uint32, key int64, rid RID) (int64, uint32, bool) {
	n := t.node(id)
	k := numKeys(n)
	// Binary search for insert position (after any duplicates).
	lo, hi := 0, k
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(n, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Shift right.
	copyLeafEntries(n, lo+1, n, lo, k-lo)
	setLeafEntry(n, lo, key, rid)
	setNumKeys(n, k+1)
	if k+1 < leafCapacity {
		return 0, 0, false
	}
	return t.splitLeaf(id)
}

func (t *Tree) splitLeaf(id uint32) (int64, uint32, bool) {
	rightID := t.allocNode(true)
	left := t.node(id)
	right := t.node(rightID)
	k := numKeys(left)
	half := k / 2
	copyLeafEntries(right, 0, left, half, k-half)
	setNumKeys(right, k-half)
	setNumKeys(left, half)
	setNextLeaf(right, nextLeaf(left))
	setNextLeaf(left, rightID)
	return leafKey(right, 0), rightID, true
}

func (t *Tree) splitInternal(id uint32) (int64, uint32, bool) {
	rightID := t.allocNode(false)
	left := t.node(id)
	right := t.node(rightID)
	k := numKeys(left)
	half := k / 2
	midKey := internalKey(left, half)
	// Keys right of the separator move to the new node.
	for i := half + 1; i < k; i++ {
		setInternalKey(right, i-half-1, internalKey(left, i))
	}
	for i := half + 1; i <= k; i++ {
		setChildID(right, i-half-1, childID(left, i))
	}
	setNumKeys(right, k-half-1)
	setNumKeys(left, half)
	return midKey, rightID, true
}

// findLeafLower descends to the leftmost leaf that can contain key.
// Because duplicates may span several leaves, the descent treats a
// separator equal to key as "go left": the first occurrence is always in
// or after that leaf.
func (t *Tree) findLeafLower(key int64) uint32 {
	id := t.root
	for {
		n := t.node(id)
		if isLeaf(n) {
			return id
		}
		k := numKeys(n)
		lo, hi := 0, k
		for lo < hi {
			mid := (lo + hi) / 2
			if internalKey(n, mid) < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		id = childID(n, lo)
	}
}

// Search returns the RIDs of all entries with exactly the given key.
func (t *Tree) Search(key int64) []RID {
	var out []RID
	t.Range(key, key, func(k int64, rid RID) bool {
		out = append(out, rid)
		return true
	})
	return out
}

// Contains reports whether any entry has the given key.
func (t *Tree) Contains(key int64) bool {
	found := false
	t.Range(key, key, func(int64, RID) bool {
		found = true
		return false
	})
	return found
}

// Range visits all entries with lo <= key <= hi in key order. fn returning
// false stops the scan. Duplicate keys are visited in insertion-shift order.
func (t *Tree) Range(lo, hi int64, fn func(key int64, rid RID) bool) {
	id := t.findLeafLower(lo)
	for id != invalidNode {
		n := t.node(id)
		k := numKeys(n)
		for i := 0; i < k; i++ {
			key := leafKey(n, i)
			if key < lo {
				continue
			}
			if key > hi {
				return
			}
			if !fn(key, leafRID(n, i)) {
				return
			}
		}
		id = nextLeaf(n)
	}
}

// Ascend visits every entry in key order.
func (t *Tree) Ascend(fn func(key int64, rid RID) bool) {
	// Walk to the leftmost leaf.
	id := t.root
	for {
		n := t.node(id)
		if isLeaf(n) {
			break
		}
		id = childID(n, 0)
	}
	for id != invalidNode {
		n := t.node(id)
		k := numKeys(n)
		for i := 0; i < k; i++ {
			if !fn(leafKey(n, i), leafRID(n, i)) {
				return
			}
		}
		id = nextLeaf(n)
	}
}

// Height returns the tree height (1 for a lone leaf).
func (t *Tree) Height() int {
	h := 1
	id := t.root
	for {
		n := t.node(id)
		if isLeaf(n) {
			return h
		}
		id = childID(n, 0)
		h++
	}
}
