package hique

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// paramsDB builds a small two-table dataset exercising every column kind.
func paramsDB(t testing.TB, options ...Option) *DB {
	t.Helper()
	db := Open(options...)
	if err := db.CreateTable("grp", Int("id"), Char("label", 8)); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable("items",
		Int("id"), Int("gid"), Int("v"), Float("price"), Char("name", 8), Date("d")); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 4; g++ {
		if err := db.Insert("grp", int64(g), fmt.Sprintf("g%02d", g)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		// d: days around 2020-01-01 (epoch day 18262).
		if err := db.Insert("items",
			int64(i), int64(i%4), int64(i%7-3), float64(i%10)+0.5,
			fmt.Sprintf("n%d", i%5), int64(18262+i%10)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// equivalenceQueries pairs a literal-specialized statement with its
// explicitly parameterized form; both must return identical results.
var equivalenceQueries = []struct {
	name    string
	literal string
	param   string
	args    []any
}{
	{
		"point-int",
		"SELECT id, v FROM items WHERE id = 7 ORDER BY id",
		"SELECT id, v FROM items WHERE id = ? ORDER BY id",
		[]any{7},
	},
	{
		"float-range",
		"SELECT id, price FROM items WHERE price > 6.5 ORDER BY id",
		"SELECT id, price FROM items WHERE price > ? ORDER BY id",
		[]any{6.5},
	},
	{
		"string-eq",
		"SELECT id, name FROM items WHERE name = 'n3' ORDER BY id",
		"SELECT id, name FROM items WHERE name = ? ORDER BY id",
		[]any{"n3"},
	},
	{
		"date-range",
		"SELECT id FROM items WHERE d >= DATE '2020-01-05' ORDER BY id",
		"SELECT id FROM items WHERE d >= ? ORDER BY id",
		[]any{"2020-01-05"}, // YYYY-MM-DD coerces to a Date parameter
	},
	{
		"negative-int",
		"SELECT id FROM items WHERE v > -2 AND v < 2 ORDER BY id",
		"SELECT id FROM items WHERE v > ? AND v < ? ORDER BY id",
		[]any{-2, 2},
	},
	{
		"left-operand",
		"SELECT id FROM items WHERE 30 <= id ORDER BY id",
		"SELECT id FROM items WHERE ? <= id ORDER BY id",
		[]any{30},
	},
	{
		"join-group",
		"SELECT label, COUNT(*) AS n, SUM(price) AS total FROM items, grp " +
			"WHERE gid = grp.id AND price > 2.5 GROUP BY label ORDER BY label",
		"SELECT label, COUNT(*) AS n, SUM(price) AS total FROM items, grp " +
			"WHERE gid = grp.id AND price > ? GROUP BY label ORDER BY label",
		[]any{2.5},
	},
}

// TestParamEquivalenceAcrossEngines asserts the acceptance criterion that
// parameterized execution returns results identical to literal execution
// on every engine.
func TestParamEquivalenceAcrossEngines(t *testing.T) {
	for _, e := range []Engine{Holistic, GenericIterators, OptimizedIterators, ColumnStore, HolisticUnoptimized} {
		t.Run(e.String(), func(t *testing.T) {
			db := paramsDB(t, WithEngine(e))
			for _, q := range equivalenceQueries {
				want, err := db.Query(q.literal)
				if err != nil {
					t.Fatalf("%s literal: %v", q.name, err)
				}
				if len(want.Rows) == 0 {
					t.Fatalf("%s: literal query selected nothing; test is vacuous", q.name)
				}
				got, err := db.Query(q.param, q.args...)
				if err != nil {
					t.Fatalf("%s parameterized: %v", q.name, err)
				}
				if !reflect.DeepEqual(want.Columns, got.Columns) || !reflect.DeepEqual(want.Rows, got.Rows) {
					t.Errorf("%s: parameterized result differs from literal\n lit: %v\n par: %v",
						q.name, want.Rows, got.Rows)
				}
			}
		})
	}
}

// TestParamEquivalenceCached runs the same pairs through the plan cache
// with auto-parameterization: the literal spelling and the explicit
// placeholder spelling collapse to one shape and must agree with the
// uncached literal result.
func TestParamEquivalenceCached(t *testing.T) {
	plain := paramsDB(t)
	cached := paramsDB(t, WithPlanCache(64))
	for _, q := range equivalenceQueries {
		want, err := plain.Query(q.literal)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		for round := 0; round < 2; round++ { // cold, then warm
			gotLit, err := cached.Query(q.literal)
			if err != nil {
				t.Fatalf("%s cached literal: %v", q.name, err)
			}
			gotPar, err := cached.Query(q.param, q.args...)
			if err != nil {
				t.Fatalf("%s cached parameterized: %v", q.name, err)
			}
			if !reflect.DeepEqual(want.Rows, gotLit.Rows) {
				t.Errorf("%s round %d: cached literal differs: %v vs %v", q.name, round, gotLit.Rows, want.Rows)
			}
			if !reflect.DeepEqual(want.Rows, gotPar.Rows) {
				t.Errorf("%s round %d: cached parameterized differs: %v vs %v", q.name, round, gotPar.Rows, want.Rows)
			}
		}
	}
	if s := cached.Stats(); s.Cache.Hits == 0 {
		t.Errorf("warm rounds never hit the cache: %+v", s.Cache)
	}
}

// TestAutoParamCompilesOnce is the headline acceptance criterion: N
// same-shape point queries with N distinct literals compile exactly once
// — the plan cache reports one miss and N-1 hits. Without
// auto-parameterization the same workload misses N times.
func TestAutoParamCompilesOnce(t *testing.T) {
	const n = 50
	run := func(t *testing.T, db *DB) {
		for i := 0; i < n; i++ {
			res, err := db.Query(fmt.Sprintf("SELECT id, v FROM items WHERE id = %d", i%40))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 1 || res.Rows[0][0].(int64) != int64(i%40) {
				t.Fatalf("query %d: rows = %v", i, res.Rows)
			}
		}
	}
	t.Run("auto-param", func(t *testing.T) {
		db := paramsDB(t, WithPlanCache(64))
		run(t, db)
		s := db.Stats()
		if s.Cache.Hits < n-1 {
			t.Errorf("hits = %d, want >= %d (one compilation for the whole shape)", s.Cache.Hits, n-1)
		}
		if s.Cache.Misses != 1 {
			t.Errorf("misses = %d, want exactly 1", s.Cache.Misses)
		}
	})
	t.Run("literal-keyed", func(t *testing.T) {
		db := paramsDB(t, WithPlanCache(64), WithAutoParam(false))
		run(t, db)
		s := db.Stats()
		// 40 distinct literals over 50 queries: the second pass over the
		// first 10 ids may hit, the 40 distinct texts all miss.
		if s.Cache.Misses < 40 {
			t.Errorf("misses = %d, want >= 40 (every distinct literal recompiles)", s.Cache.Misses)
		}
	})
}

// TestParamIndexScan checks that a parameterized equality probe still
// rides the fractal B+-tree index: the probe key binds at run time.
func TestParamIndexScan(t *testing.T) {
	db := paramsDB(t, WithPlanCache(64))
	if err := db.BuildIndex("items", "id"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		res, err := db.Query("SELECT id, name FROM items WHERE id = ?", i)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].(int64) != int64(i) {
			t.Fatalf("id=%d: rows = %v", i, res.Rows)
		}
	}
	src, err := db.GeneratedSource("SELECT id, name FROM items WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if want := "bind.Int64(0)"; !strings.Contains(src, want) {
		t.Errorf("generated source does not read the bind vector:\n%s", src)
	}
}

// TestBindErrors checks arity and coercion failures surface as BindError
// (the server maps these to HTTP 400).
func TestBindErrors(t *testing.T) {
	db := paramsDB(t)
	var bindErr *BindError
	if _, err := db.Query("SELECT id FROM items WHERE id = ?"); !errors.As(err, &bindErr) {
		t.Errorf("missing argument: got %v, want BindError", err)
	}
	if _, err := db.Query("SELECT id FROM items WHERE id = ?", 1, 2); !errors.As(err, &bindErr) {
		t.Errorf("extra argument: got %v, want BindError", err)
	}
	if _, err := db.Query("SELECT id FROM items WHERE id = ?", "not-a-number"); !errors.As(err, &bindErr) {
		t.Errorf("uncoercible value: got %v, want BindError", err)
	}
	if _, err := db.Query("SELECT id FROM items WHERE id = ?", 7.5); !errors.As(err, &bindErr) {
		t.Errorf("fractional value for Int column: got %v, want BindError", err)
	}
	if _, err := db.Query("SELECT id FROM items WHERE id = ?", 7.0); err != nil {
		t.Errorf("integral float must coerce to Int: %v", err)
	}
	if _, err := db.Query("SELECT ? FROM items", 1); err == nil {
		t.Error("parameter outside a WHERE comparison must be rejected")
	}
}

// TestLiftedLiteralKindMismatchFallsBack exercises the literal-specialized
// fallback (DESIGN.md §3.1): a lifted literal incompatible with the
// compared column must surface the literal path's plan-time error, not a
// caller-value bind error.
func TestLiftedLiteralKindMismatchFallsBack(t *testing.T) {
	db := paramsDB(t, WithPlanCache(16))
	_, err := db.Query("SELECT id FROM items WHERE name = 5")
	if err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("err = %v, want plan-time literal-incompatibility error", err)
	}
	var bindErr *BindError
	if errors.As(err, &bindErr) {
		t.Fatalf("statement-embedded literal mismatch must not be a BindError: %v", err)
	}
}

// TestPreparedRevalidates proves a Prepared statement is no longer pinned
// to the catalogue state it was compiled against. Map aggregation bakes a
// value directory from table statistics into the plan; a pinned plan
// would silently drop groups inserted later, so the assertion below fails
// without stamp revalidation.
func TestPreparedRevalidates(t *testing.T) {
	db := Open()
	if err := db.CreateTable("ev", Int("g"), Int("v")); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		if err := db.Insert("ev", int64(g), int64(10*g)); err != nil {
			t.Fatal(err)
		}
	}
	pr, err := db.Prepare("SELECT g, COUNT(*) AS n FROM ev GROUP BY g ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("initial run: %v", res.Rows)
	}
	if err := db.Insert("ev", int64(7), int64(70)); err != nil {
		t.Fatal(err)
	}
	res, err = pr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("after insert: %v (stale pinned plan dropped the new group)", res.Rows)
	}
	if res.Rows[2][0].(int64) != 7 || res.Rows[2][1].(int64) != 1 {
		t.Fatalf("after insert: %v", res.Rows)
	}
}

// TestPreparedParams runs a parameterized prepared statement repeatedly.
func TestPreparedParams(t *testing.T) {
	db := paramsDB(t)
	pr, err := db.Prepare("SELECT id, name FROM items WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		res, err := pr.Run(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].(int64) != int64(i) {
			t.Fatalf("id=%d: rows = %v", i, res.Rows)
		}
	}
	var bindErr *BindError
	if _, err := pr.Run(); !errors.As(err, &bindErr) {
		t.Errorf("missing argument: got %v, want BindError", err)
	}
}
