package hique

// End-to-end integration tests crossing package boundaries: TPC-H data
// generated, persisted through the storage manager, reloaded into a fresh
// catalogue, and queried — the full hique-gen -> hique shell flow.

import (
	"strings"
	"testing"

	"hique/internal/catalog"
	"hique/internal/core"
	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/storage"
	"hique/internal/tpch"
	"hique/internal/types"
)

func TestTPCHPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mgr, err := storage.NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Generate and persist (cmd/hique-gen's job).
	tables := tpch.GenerateTables(tpch.Config{ScaleFactor: 0.005, Seed: 9})
	for _, tbl := range tables {
		if err := mgr.Save(tbl); err != nil {
			t.Fatalf("save %s: %v", tbl.Name(), err)
		}
	}

	// Reload into a fresh catalogue (cmd/hique -dir's job).
	names, err := mgr.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 8 {
		t.Fatalf("persisted %d tables, want 8", len(names))
	}
	cat := catalog.New()
	for _, n := range names {
		tbl, err := mgr.Load(n)
		if err != nil {
			t.Fatalf("load %s: %v", n, err)
		}
		cat.Register(tbl)
	}

	// Run Q1 on both the original and the reloaded catalogue; results
	// must match byte for byte.
	run := func(c *catalog.Catalog) *storage.Table {
		stmt, err := sql.Parse(tpch.Q1)
		if err != nil {
			t.Fatal(err)
		}
		p, err := plan.Build(stmt, c)
		if err != nil {
			t.Fatal(err)
		}
		out, err := core.NewEngine().Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	orig := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 9})
	a, b := run(orig), run(cat)
	if a.NumRows() != b.NumRows() {
		t.Fatalf("rows %d vs %d after reload", a.NumRows(), b.NumRows())
	}
	for i := 0; i < a.NumRows(); i++ {
		if string(a.Tuple(i)) != string(b.Tuple(i)) {
			t.Fatalf("row %d differs after persistence round trip", i)
		}
	}
}

func TestFacadeOverTPCHCatalog(t *testing.T) {
	// Drive the public facade against a catalogue populated via the
	// internal generator, mimicking an embedding application.
	db := Open()
	for _, tbl := range tpch.GenerateTables(tpch.Config{ScaleFactor: 0.005, Seed: 5}) {
		db.Catalog().Register(tbl)
	}
	res, err := db.Query("SELECT o_orderstatus, COUNT(*) AS n FROM orders GROUP BY o_orderstatus ORDER BY o_orderstatus")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || len(res.Rows) > 3 {
		t.Fatalf("order statuses = %d rows", len(res.Rows))
	}
	var total int64
	for _, row := range res.Rows {
		total += row[1].(int64)
	}
	n, _ := db.RowCount("orders")
	if total != int64(n) {
		t.Fatalf("status counts sum to %d, want %d", total, n)
	}
}

func TestGeneratedSourceGoldenShape(t *testing.T) {
	// The generated source for a fixed plan must contain the template
	// landmarks in a stable order (a structural golden test: robust to
	// cosmetic drift, strict about template structure).
	db := Open()
	if err := db.CreateTable("gt", Int("a"), Int("b"), Float("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Insert("gt", i, i%4, float64(i))
	}
	src, err := db.GeneratedSource("SELECT b, SUM(x) AS s FROM gt WHERE a > 10 GROUP BY b ORDER BY s DESC")
	if err != nil {
		t.Fatal(err)
	}
	landmarks := []string{
		"package query",
		"evalAggregate",
		"offset formula",
		"evalOrderBy",
		"func EvaluateQuery",
		"return result",
	}
	pos := -1
	for _, lm := range landmarks {
		next := strings.Index(src, lm)
		if next < 0 {
			t.Fatalf("landmark %q missing from generated source", lm)
		}
		if next < pos {
			t.Fatalf("landmark %q out of order", lm)
		}
		pos = next
	}
}

func TestDateRoundTripThroughFacade(t *testing.T) {
	db := Open()
	if err := db.CreateTable("dt", Int("id"), Date("d")); err != nil {
		t.Fatal(err)
	}
	day, err := sql.ParseDate("2001-06-15")
	if err != nil {
		t.Fatal(err)
	}
	db.Insert("dt", 1, day)
	db.Insert("dt", 2, day+100)
	res, err := db.Query("SELECT id FROM dt WHERE d > DATE '2001-07-01'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 2 {
		t.Fatalf("date filter rows = %v", res.Rows)
	}
	_ = types.DateDatum(day)
}
