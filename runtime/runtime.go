// Package runtime is the ABI the generated query sources compile
// against: every identifier codegen.EmitSource emits resolves here. The
// paper's generator hands its C file to an external compiler; our
// substitution emits Go and, until this package existed, could only
// syntax-check it. With a real ABI package the emitted source is
// type-checked (go/types) over the whole differential corpus in
// internal/enginetest, so a template that emits ill-typed code fails in
// unit tests rather than at first execution.
//
// The scalar accessors are the real row-format helpers (shared with
// internal/types, so offsets and endianness agree with the engine). The
// structural pieces — Table, Staging, Accumulators — are reference
// implementations over plain byte slices: correct but unoptimised,
// because production execution runs the fused closures of
// internal/core and internal/codegen, never this package. Keeping the
// bodies small and obvious makes the ABI contract auditable.
package runtime

import (
	"sort"

	"hique/internal/types"
)

// Page is one fixed-size run of tuples. Generated scan loops read
// NumTuples and slice Data directly — both must stay exported fields.
type Page struct {
	NumTuples int
	Data      []byte
}

// Table is a materialised result or input: a page list plus an append
// cursor. NumPages is a field (generated loops read it without a call).
type Table struct {
	NumPages  int
	pages     []*Page
	tupleSize int
}

// NewTable returns an empty table for tuples of the given width.
func NewTable(tupleSize int) *Table {
	return &Table{tupleSize: tupleSize}
}

// Page returns the p-th page.
func (t *Table) Page(p int) *Page { return t.pages[p] }

// Alloc reserves one tuple slot and returns it for in-place filling.
func (t *Table) Alloc(size int) []byte {
	last := t.lastPage(size)
	off := last.NumTuples * size
	return last.Data[off : off+size]
}

// Commit finalises the most recent Alloc.
func (t *Table) Commit(dst []byte) {
	t.pages[len(t.pages)-1].NumTuples++
}

const tuplesPerPage = 256

func (t *Table) lastPage(size int) *Page {
	if n := len(t.pages); n > 0 && t.pages[n-1].NumTuples < tuplesPerPage {
		return t.pages[n-1]
	}
	p := &Page{Data: make([]byte, tuplesPerPage*size)}
	t.pages = append(t.pages, p)
	t.NumPages = len(t.pages)
	return p
}

// append commits a copied tuple (Alloc+copy+Commit).
func (t *Table) append(tuple []byte) {
	copy(t.Alloc(len(tuple)), tuple)
	t.Commit(nil)
}

// rows flattens the table into per-tuple slices.
func (t *Table) rows() [][]byte {
	var out [][]byte
	for _, p := range t.pages {
		for i := 0; i < p.NumTuples; i++ {
			out = append(out, p.Data[i*t.tupleSize:(i+1)*t.tupleSize])
		}
	}
	return out
}

// SortRunsAndMerge orders the tuples by the int64 key at keyOff.
func (t *Table) SortRunsAndMerge(keyOff int) {
	rows := t.rows()
	sort.SliceStable(rows, func(i, j int) bool {
		return Int64At(rows[i], keyOff) < Int64At(rows[j], keyOff)
	})
	nt := NewTable(t.tupleSize)
	for _, r := range rows {
		nt.append(r)
	}
	*t = *nt
}

// Truncate keeps the first n tuples.
func (t *Table) Truncate(n int) {
	rows := t.rows()
	if n > len(rows) {
		n = len(rows)
	}
	nt := NewTable(t.tupleSize)
	for _, r := range rows[:n] {
		nt.append(r)
	}
	*t = *nt
}

// Staging is a partitioned staging area (the operator-input buffer of
// the staging template): one page list per partition.
type Staging struct {
	parts  []*Table
	width  int
	fine   []int64 // value directory for RouteFine
	starts []int   // page index base per partition, for StartPage/EndPage
}

// NewStaging returns a staging area with the given partition count.
func NewStaging(parts int) *Staging {
	if parts < 1 {
		parts = 1
	}
	return &Staging{parts: make([]*Table, parts)}
}

// WrapTable presents an existing table as a single-partition staging
// (map aggregation scans its input unstaged).
func WrapTable(t *Table) *Staging {
	return &Staging{parts: []*Table{t}, width: t.tupleSize}
}

func (s *Staging) part(i int, size int) *Table {
	if s.parts[i] == nil {
		s.parts[i] = NewTable(size)
	}
	s.width = size
	return s.parts[i]
}

// Alloc reserves a tuple slot in partition 0's tail (Append/Route
// relocate it when the destination differs).
func (s *Staging) Alloc(size int) []byte {
	s.width = size
	return make([]byte, size)
}

// Append commits dst into partition 0.
func (s *Staging) Append(dst []byte) { s.part(0, len(dst)).append(dst) }

// Route commits dst into the given hash partition.
func (s *Staging) Route(dst []byte, part int) { s.part(part, len(dst)).append(dst) }

// RouteFine commits dst into the partition its key maps to through the
// value directory (reference: first-fit growth).
func (s *Staging) RouteFine(dst []byte, key int64) {
	for i, v := range s.fine {
		if v == key {
			s.part(i%len(s.parts), len(dst)).append(dst)
			return
		}
	}
	s.fine = append(s.fine, key)
	s.part((len(s.fine)-1)%len(s.parts), len(dst)).append(dst)
}

// Partitions returns the partition count.
func (s *Staging) Partitions() int { return len(s.parts) }

// NumPages returns partition part's page count.
func (s *Staging) NumPages(part int) int {
	if s.parts[part] == nil {
		return 0
	}
	return s.parts[part].NumPages
}

// PageOf returns page p of partition part.
func (s *Staging) PageOf(part, p int) *Page { return s.parts[part].Page(p) }

// StartPage returns the first global page index of partition k (the
// generated join loops iterate global indexes).
func (s *Staging) StartPage(k int) int {
	start := 0
	for i := 0; i < k; i++ {
		start += s.NumPages(i)
	}
	return start
}

// EndPage returns the last global page index of partition k (inclusive;
// one less than StartPage when the partition is empty).
func (s *Staging) EndPage(k int) int { return s.StartPage(k) + s.NumPages(k) - 1 }

// Page resolves a global page index across partitions.
func (s *Staging) Page(p int) *Page {
	for _, t := range s.parts {
		if t == nil {
			continue
		}
		if p < t.NumPages {
			return t.Page(p)
		}
		p -= t.NumPages
	}
	return nil
}

// SortPartition orders one partition by the key at keyOff (hybrid join
// sorts just before joining).
func (s *Staging) SortPartition(k, keyOff int) {
	if s.parts[k] != nil {
		s.parts[k].SortRunsAndMerge(keyOff)
	}
}

// SortRunsAndMerge orders partition 0 (the whole input when unpartitioned).
func (s *Staging) SortRunsAndMerge(keyOff int) { s.SortPartition(0, keyOff) }

// SortEachPartition orders every partition independently.
func (s *Staging) SortEachPartition(keyOff int) {
	for k := range s.parts {
		s.SortPartition(k, keyOff)
	}
}

// AsTable returns the staged tuples as a single table.
func (s *Staging) AsTable() *Table {
	out := NewTable(s.width)
	for _, t := range s.parts {
		if t == nil {
			continue
		}
		for _, r := range t.rows() {
			out.append(r)
		}
	}
	return out
}

// Bind is the bind vector a parameterized artefact reads its constants
// from at run time.
type Bind struct {
	vals []types.Datum
}

// NewBind wraps bound parameter values.
func NewBind(vals []types.Datum) Bind { return Bind{vals: vals} }

// Int64 returns slot's integer value.
func (b Bind) Int64(slot int) int64 { return b.vals[slot].I }

// Float64 returns slot's float value.
func (b Bind) Float64(slot int) float64 { return b.vals[slot].F }

// Bytes returns slot's string value as bytes.
func (b Bind) Bytes(slot int) []byte { return []byte(b.vals[slot].S) }

// Catalog resolves the generated composer's named inputs.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty input catalog.
func NewCatalog() *Catalog { return &Catalog{tables: map[string]*Table{}} }

// Register binds a name to a table.
func (c *Catalog) Register(name string, t *Table) { c.tables[name] = t }

// Input returns the named input table.
func (c *Catalog) Input(name string) *Table { return c.tables[name] }

// Accumulators is the running-group state of the sort/hybrid
// aggregation template: one open group, closed on key change.
type Accumulators struct {
	key    []byte
	open   bool
	counts [16]int64
	sums   [16]float64
}

// GroupKey returns the open group's key bytes at off (empty before the
// first group opens, which compares unequal to any real key).
func (a *Accumulators) GroupKey(off int) []byte {
	if !a.open || off >= len(a.key) {
		return nil
	}
	return a.key[off:]
}

// OpenGroup starts a group keyed by the tuple.
func (a *Accumulators) OpenGroup(tuple []byte) {
	a.key = append(a.key[:0], tuple...)
	a.open = true
	a.counts = [16]int64{}
	a.sums = [16]float64{}
}

// CloseGroup emits the open group into out (reference: the key tuple
// only; production aggregation emits key+aggregate columns).
func (a *Accumulators) CloseGroup(out *Table) {
	if a.open {
		out.append(a.key[:min(len(a.key), out.tupleSize)])
	}
	a.open = false
}

// Count bumps COUNT(*) aggregate i.
func (a *Accumulators) Count(i int) { a.counts[i]++ }

// Update folds v into aggregate i (sum semantics; MIN/MAX/AVG refine in
// the production accumulators).
func (a *Accumulators) Update(i int, v float64) { a.sums[i] += v }

// Int64At reads the int64 field at off — the engine's row format.
func Int64At(tuple []byte, off int) int64 { return types.GetInt(tuple, off) }

// Float64At reads the float64 field at off.
func Float64At(tuple []byte, off int) float64 { return types.GetFloat(tuple, off) }

// PutInt64 stores v at off.
func PutInt64(dst []byte, off int, v int64) { types.PutInt(dst, off, v) }

// PutFloat64 stores v at off.
func PutFloat64(dst []byte, off int, v float64) { types.PutFloat(dst, off, v) }

// CmpBytes three-way-compares a fixed-width field against a key that may
// be staged bytes or an emitted string literal.
func CmpBytes[B []byte | string](a []byte, b B) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	// A shorter literal padded with NULs equals the fixed-width field.
	for i := n; i < len(a); i++ {
		if a[i] != 0 {
			return 1
		}
	}
	for i := n; i < len(b); i++ {
		if b[i] != 0 {
			return -1
		}
	}
	return 0
}

// Hash is the partition hash of the generated Route calls
// (Fibonacci-style multiplicative hash; masked by the caller).
func Hash(v int64) uint64 { return uint64(v) * 0x9e3779b97f4a7c15 }

// UpdateMergeBounds is the merge join's advance/backtrack step (the
// paper's condition-variable loop bounds). The reference ABI keeps it a
// no-op: the generated nested loops stay correct without the bound
// tightening, just slower.
func UpdateMergeBounds() {}

// DirLookupN binary-searches group directory N for a key, returning its
// ordinal. The directories are query-constant; the reference ABI
// resolves them as identity buckets.
func DirLookup0(v int64) int { return int(v) }
func DirLookup1(v int64) int { return int(v) }
func DirLookup2(v int64) int { return int(v) }
func DirLookup3(v int64) int { return int(v) }
func DirLookup4(v int64) int { return int(v) }
func DirLookup5(v int64) int { return int(v) }
func DirLookup6(v int64) int { return int(v) }
func DirLookup7(v int64) int { return int(v) }

// EmitGroups materialises the flat map-aggregation arrays into out, one
// row per non-empty slot.
func EmitGroups(out *Table, counts []int64, nAggs int) {
	for slot, c := range counts {
		if c == 0 {
			continue
		}
		dst := out.Alloc(out.tupleSize)
		PutInt64(dst, 0, int64(slot))
		out.Commit(dst)
	}
	_ = nAggs
}
