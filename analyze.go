package hique

import (
	"fmt"
	"strings"
	"time"

	"hique/internal/codegen"
	"hique/internal/plan"
	"hique/internal/storage"
)

// StageStats is one recorded pipeline stage of an EXPLAIN ANALYZE run.
// Names are canonical across engines (join[J].stage[K], join[J],
// aggregate, project, sort); RowsOut of the join and terminal stages is
// the operator's output cardinality on every engine, while RowsIn and
// Elapsed describe how this engine decomposed the work.
type StageStats struct {
	Name      string `json:"name"`
	RowsIn    int64  `json:"rows_in"`
	RowsOut   int64  `json:"rows_out"`
	ElapsedUs int64  `json:"elapsed_us"`
}

// ParallelStats is one morsel-driven parallel phase of an EXPLAIN
// ANALYZE run: the stage it ran under, the workers that cooperated
// (helpers actually admitted, plus the caller), and the rows each
// processed morsel produced, in morsel order. Under LIMIT cancellation
// the unclaimed tail is absent.
type ParallelStats struct {
	Stage      string  `json:"stage"`
	Workers    int     `json:"workers"`
	MorselRows []int64 `json:"morsel_rows"`
}

// AnalyzeResult is the outcome of DB.ExplainAnalyze: the optimizer's
// plan, the per-stage execution statistics, and the totals of the actual
// run that produced them. Parallel is empty for serial executions.
type AnalyzeResult struct {
	Engine   string          `json:"engine"`
	Plan     string          `json:"plan"`
	Stages   []StageStats    `json:"stages"`
	Parallel []ParallelStats `json:"parallel,omitempty"`
	Rows     int             `json:"rows"`
	Elapsed  time.Duration   `json:"-"`
}

// String renders the plan followed by the stage table.
func (a *AnalyzeResult) String() string {
	var b strings.Builder
	b.WriteString(a.Plan)
	if !strings.HasSuffix(a.Plan, "\n") {
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "engine: %s\n", a.Engine)
	for _, s := range a.Stages {
		fmt.Fprintf(&b, "%-18s rows_in=%-10d rows_out=%-10d elapsed=%s\n",
			s.Name, s.RowsIn, s.RowsOut, time.Duration(s.ElapsedUs)*time.Microsecond)
	}
	for _, p := range a.Parallel {
		fmt.Fprintf(&b, "%-18s workers=%d morsels=%d rows=%v\n",
			"parallel:"+p.Stage, p.Workers, len(p.MorselRows), p.MorselRows)
	}
	fmt.Fprintf(&b, "result: %d rows in %s\n", a.Rows, a.Elapsed)
	return b.String()
}

// ExplainAnalyze plans, executes, and profiles a SELECT statement: the
// engines record per-stage row counts and timings into a pooled trace
// attached to this execution only. The statement actually runs (its
// result is drained to count rows), on the engine currently selected —
// holistic engines compile a dedicated traced pipeline, so cached
// serving pipelines never carry trace branches and pay nothing when
// tracing is not requested.
func (db *DB) ExplainAnalyze(query string, args ...any) (res *AnalyzeResult, err error) {
	defer db.met.noteQuery(&err)
	defer containPanic(&err)
	db.mu.RLock()
	exec, engine := db.exec, db.engine
	db.mu.RUnlock()

	p, unlock, err := db.planLocked(query)
	if err != nil {
		return nil, err
	}
	planText := p.Explain()
	params, err := bindValuesInto(nil, p.Params, nil, false, args)
	if err != nil {
		unlock()
		return nil, err
	}

	tr := plan.GetTrace()
	defer plan.PutTrace(tr)
	p.Trace = tr

	var run func() (*storage.Table, error)
	engineName := exec.Name()
	if level, compiled := cacheLevel(engine); compiled {
		// The serving path for holistic engines is the codegen pipeline;
		// compile a fresh artefact against the traced plan so fused loops
		// bake their trace hooks in (codegen.fusedQuery.traced).
		cq, gerr := codegen.Generate(p, level)
		if gerr != nil {
			unlock()
			return nil, gerr
		}
		run = func() (*storage.Table, error) { return cq.RunParams(params) }
	} else {
		bp, berr := p.Bind(params)
		if berr != nil {
			unlock()
			return nil, berr
		}
		run = func() (*storage.Table, error) { return exec.Execute(bp) }
	}

	var dst Result
	if err := db.finish(&dst, p, unlock, run); err != nil {
		return nil, err
	}
	out := &AnalyzeResult{
		Engine:  engineName,
		Plan:    planText,
		Stages:  make([]StageStats, len(tr.Stages)),
		Rows:    len(dst.Rows),
		Elapsed: dst.Elapsed,
	}
	for i, s := range tr.Stages {
		out.Stages[i] = StageStats{
			Name:      s.Name,
			RowsIn:    s.RowsIn,
			RowsOut:   s.RowsOut,
			ElapsedUs: s.Elapsed.Microseconds(),
		}
	}
	for _, p := range tr.Parallel {
		// Copy the morsel rows out of the pooled trace before PutTrace.
		rows := make([]int64, len(p.MorselRows))
		copy(rows, p.MorselRows)
		out.Parallel = append(out.Parallel, ParallelStats{
			Stage: p.Stage, Workers: p.Workers, MorselRows: rows,
		})
	}
	return out, nil
}

// StripExplainAnalyze reports whether stmt starts with the EXPLAIN
// ANALYZE keywords (case-insensitive) and returns the statement that
// follows them — the SQL front ends use it to route the analyze form of
// a query.
func StripExplainAnalyze(stmt string) (string, bool) {
	rest, ok := stripKeyword(stmt, "explain")
	if !ok {
		return stmt, false
	}
	rest, ok = stripKeyword(rest, "analyze")
	if !ok {
		return stmt, false
	}
	return strings.TrimLeft(rest, " \t\r\n"), true
}

// stripKeyword removes one leading keyword (case-insensitive, must be
// followed by whitespace) after trimming leading space.
func stripKeyword(s, kw string) (string, bool) {
	s = strings.TrimLeft(s, " \t\r\n")
	if len(s) <= len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return s, false
	}
	switch s[len(kw)] {
	case ' ', '\t', '\r', '\n':
		return s[len(kw)+1:], true
	}
	return s, false
}
