module hique

go 1.24
