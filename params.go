package hique

import (
	"fmt"
	"math"

	"hique/internal/plan"
	"hique/internal/sql"
	"hique/internal/types"
)

// BindError reports a problem binding parameter values to a statement:
// wrong argument count, or a value that cannot be coerced to the type of
// the column it compares against. The HTTP server maps it to a 400, since
// the statement itself may be fine and only the supplied values are not.
type BindError struct{ msg string }

func (e *BindError) Error() string { return "hique: " + e.msg }

func bindErrorf(format string, args ...any) error {
	return &BindError{msg: fmt.Sprintf(format, args...)}
}

// bindValuesInto builds the execution bind vector for a plan into dst
// (extending it in place, so a pooled scratch serves repeated calls):
// the merged stream of auto-lifted literals (non-placeholder entries of
// lits, produced by sql.ShapeBuf) and caller-supplied arguments (one per
// placeholder entry, and all slots when auto is false), each coerced to
// the kind of the column its slot compares against.
func bindValuesInto(dst []types.Datum, slots []plan.ParamSlot, lits []sql.LiftedLit, auto bool, args []any) ([]types.Datum, error) {
	if auto && len(lits) != len(slots) {
		// Every placeholder the shape carries must have planned into a
		// slot; Build guarantees this, so a mismatch is an internal bug.
		return dst, fmt.Errorf("hique: shape has %d placeholders but plan has %d slots", len(lits), len(slots))
	}
	explicit := len(slots)
	if auto {
		explicit = 0
		for _, l := range lits {
			if l.Kind == sql.LitNone {
				explicit++
			}
		}
	}
	if len(args) != explicit {
		return dst, bindErrorf("statement wants %d parameters, got %d", explicit, len(args))
	}
	if len(slots) == 0 {
		return dst, nil
	}
	next := 0
	for i := range slots {
		if auto && lits[i].Kind != sql.LitNone {
			d, ok := liftedDatum(lits[i], slots[i].Kind)
			if !ok {
				// A lifted literal that cannot coerce is a statement
				// problem, not a caller-value problem: report it as a
				// plain (plan-class) error, which also lets the
				// literal-specialized fallback re-raise it with the
				// original plan-time message.
				return dst, fmt.Errorf("hique: parameter %d (%s): plan: literal %s incompatible with %v column",
					i+1, slots[i].Column, lits[i].Expr(), slots[i].Kind)
			}
			dst = append(dst, d)
			continue
		}
		d, err := coerceParam(args[next], slots[i])
		if err != nil {
			return dst, bindErrorf("parameter %d (%s): %v", i+1, slots[i].Column, err)
		}
		dst = append(dst, d)
		next++
	}
	return dst, nil
}

// liftedDatum coerces a lifted literal to the compared column's kind,
// mirroring plan.LiteralDatum's rules without materialising an AST node.
func liftedDatum(l sql.LiftedLit, kind types.Kind) (types.Datum, bool) {
	switch l.Kind {
	case sql.LitInt:
		switch kind {
		case types.Int, types.Date:
			return types.Datum{Kind: kind, I: l.I}, true
		case types.Float:
			return types.FloatDatum(float64(l.I)), true
		}
	case sql.LitFloat:
		if kind == types.Float {
			return types.FloatDatum(l.F), true
		}
	case sql.LitDate:
		switch kind {
		case types.Date, types.Int:
			return types.Datum{Kind: kind, I: l.I}, true
		}
	case sql.LitString:
		if kind == types.String {
			return types.StringDatum(l.S), true
		}
	}
	return types.Datum{}, false
}

// coerceParam converts a caller-supplied value to a datum of the slot's
// column kind, enforcing CHAR(n) capacity when the slot carries a width
// (write-path slots do; read-path comparisons never truncate).
func coerceParam(v any, slot plan.ParamSlot) (types.Datum, error) {
	d, err := coerceValue(v, slot.Kind)
	if err != nil {
		return types.Datum{}, err
	}
	if d.Kind == types.String && slot.Size > 0 && len(d.S) > slot.Size {
		return types.Datum{}, fmt.Errorf("string %q (%d bytes) exceeds CHAR(%d)", d.S, len(d.S), slot.Size)
	}
	return d, nil
}

// coerceValue converts a caller-supplied Go value to a datum of the given
// column kind. Integral float64 values convert to Int/Date columns (JSON
// has only one number type), date strings parse as YYYY-MM-DD, and Int
// values widen to Float — the same conversions a literal in the statement
// text would get. It is the single coercion rule for every value entering
// the engine from Go: query bind parameters, DML bind parameters, and the
// Go-API Insert all route through it, so the write side accepts exactly
// what the read side would match.
func coerceValue(v any, kind types.Kind) (types.Datum, error) {
	if d, ok := v.(types.Datum); ok {
		if d.Kind != kind {
			return types.Datum{}, fmt.Errorf("datum kind %v incompatible with %v column", d.Kind, kind)
		}
		return d, nil
	}
	switch kind {
	case types.Int, types.Date:
		switch x := v.(type) {
		case int64:
			return types.Datum{Kind: kind, I: x}, nil
		case int:
			return types.Datum{Kind: kind, I: int64(x)}, nil
		case float64:
			if x != math.Trunc(x) || x < math.MinInt64 || x >= math.MaxInt64 {
				return types.Datum{}, fmt.Errorf("value %v is not an integer", x)
			}
			return types.Datum{Kind: kind, I: int64(x)}, nil
		case string:
			if kind == types.Date {
				days, err := sql.ParseDate(x)
				if err != nil {
					return types.Datum{}, err
				}
				return types.Datum{Kind: types.Date, I: days}, nil
			}
		}
	case types.Float:
		switch x := v.(type) {
		case float64:
			return types.FloatDatum(x), nil
		case int64:
			return types.FloatDatum(float64(x)), nil
		case int:
			return types.FloatDatum(float64(x)), nil
		}
	case types.String:
		if x, ok := v.(string); ok {
			return types.StringDatum(x), nil
		}
	}
	return types.Datum{}, fmt.Errorf("cannot use %v (%T) as %v", v, v, kind)
}

// liftedAny reports whether auto-parameterization actually lifted a
// literal (as opposed to only passing through explicit placeholders).
func liftedAny(lits []sql.LiftedLit) bool {
	for _, l := range lits {
		if l.Kind != sql.LitNone {
			return true
		}
	}
	return false
}
