package hique

// Differential tests for EXPLAIN ANALYZE: every engine must report the
// same stage-name set, and the cross-engine invariant columns — join
// RowsOut and terminal-stage RowsOut — must agree with each other and
// with the actual result cardinality. RowsIn and Elapsed are advisory
// (engines differ in where they apply filters), so they are only checked
// for sanity, never for equality.
//
// The query list deliberately avoids LIMIT (the fused pipeline stops
// early while general engines truncate after the fact, so intermediate
// counts legitimately differ) and group-less aggregates over empty
// inputs (the identity row is appended after the engines run).

import (
	"reflect"
	"sort"
	"testing"
)

var analyzeEngines = []Engine{Holistic, GenericIterators, OptimizedIterators, ColumnStore, HolisticUnoptimized}

var analyzeQueries = []struct {
	name string
	sql  string
	args []any
}{
	{name: "scan", sql: "SELECT id, price FROM fact WHERE id < 50 ORDER BY id"},
	{name: "agg", sql: "SELECT grp, COUNT(*) AS n, SUM(price) AS s FROM fact GROUP BY grp ORDER BY grp"},
	{name: "join", sql: "SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id ORDER BY f.id"},
	{name: "join-agg", sql: "SELECT d.label, COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label ORDER BY d.label"},
	{name: "join-param", sql: "SELECT f.id, d.label FROM fact f, dim d WHERE f.grp = d.id AND f.price > ? ORDER BY f.id", args: []any{500.0}},
}

func stageNames(stages []StageStats) []string {
	names := make([]string, len(stages))
	for i, s := range stages {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

func stageByName(stages []StageStats, name string) (StageStats, bool) {
	for _, s := range stages {
		if s.Name == name {
			return s, true
		}
	}
	return StageStats{}, false
}

// terminalStage picks the stage whose RowsOut must equal the result
// cardinality: sort if present, else aggregate, else project.
func terminalStage(stages []StageStats) (StageStats, bool) {
	for _, name := range []string{"sort", "aggregate", "project"} {
		if s, ok := stageByName(stages, name); ok {
			return s, true
		}
	}
	return StageStats{}, false
}

func TestExplainAnalyzeDifferential(t *testing.T) {
	for _, q := range analyzeQueries {
		t.Run(q.name, func(t *testing.T) {
			type run struct {
				engine string
				a      *AnalyzeResult
			}
			var runs []run
			for _, e := range analyzeEngines {
				db := joinTestDB(t, WithEngine(e))
				a, err := db.ExplainAnalyze(q.sql, q.args...)
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				runs = append(runs, run{engine: e.String(), a: a})
			}
			base := runs[0]
			if base.a.Rows == 0 {
				t.Fatalf("degenerate test query: 0 rows")
			}
			baseNames := stageNames(base.a.Stages)
			baseTerm, ok := terminalStage(base.a.Stages)
			if !ok {
				t.Fatalf("%s: no terminal stage in %v", base.engine, baseNames)
			}
			if baseTerm.RowsOut != int64(base.a.Rows) {
				t.Errorf("%s: terminal stage %s RowsOut %d != result rows %d",
					base.engine, baseTerm.Name, baseTerm.RowsOut, base.a.Rows)
			}
			for _, r := range runs[1:] {
				if r.a.Rows != base.a.Rows {
					t.Errorf("%s: %d rows, %s: %d rows", base.engine, base.a.Rows, r.engine, r.a.Rows)
				}
				if names := stageNames(r.a.Stages); !reflect.DeepEqual(names, baseNames) {
					t.Errorf("stage sets differ: %s=%v %s=%v", base.engine, baseNames, r.engine, names)
					continue
				}
				term, _ := terminalStage(r.a.Stages)
				if term.RowsOut != baseTerm.RowsOut {
					t.Errorf("terminal RowsOut differ: %s=%d %s=%d",
						base.engine, baseTerm.RowsOut, r.engine, term.RowsOut)
				}
				// Every join stage's output cardinality is an invariant of
				// the query, not of the engine.
				for _, s := range base.a.Stages {
					if len(s.Name) < 4 || s.Name[:4] != "join" {
						continue
					}
					rs, ok := stageByName(r.a.Stages, s.Name)
					if !ok {
						t.Errorf("%s missing stage %s", r.engine, s.Name)
						continue
					}
					if rs.RowsOut != s.RowsOut {
						t.Errorf("stage %s RowsOut differ: %s=%d %s=%d",
							s.Name, base.engine, s.RowsOut, r.engine, rs.RowsOut)
					}
				}
				for _, s := range r.a.Stages {
					if s.RowsOut < 0 || s.RowsIn < 0 || s.ElapsedUs < 0 {
						t.Errorf("%s stage %s has negative fields: %+v", r.engine, s.Name, s)
					}
				}
			}
		})
	}
}

// TestExplainAnalyzeMatchesQuery asserts EXPLAIN ANALYZE returns the same
// cardinality as the plain query path, and that running it does not
// poison the plan cache for subsequent untraced queries.
func TestExplainAnalyzeMatchesQuery(t *testing.T) {
	db := joinTestDB(t, WithPlanCache(16))
	const q = "SELECT d.label, COUNT(*) AS n FROM fact f, dim d WHERE f.grp = d.id GROUP BY d.label ORDER BY d.label"

	a, err := db.ExplainAnalyze(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != len(res.Rows) {
		t.Fatalf("analyze rows %d != query rows %d", a.Rows, len(res.Rows))
	}
	// Warm the cache and re-query: the cached plan must not carry a trace.
	for i := 0; i < 3; i++ {
		res2, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res2.Rows, res.Rows) {
			t.Fatal("cached query result drifted after EXPLAIN ANALYZE")
		}
	}
	if a.Plan == "" {
		t.Error("missing plan text")
	}
	if a.String() == "" {
		t.Error("empty renderer output")
	}
}

func TestStripExplainAnalyze(t *testing.T) {
	cases := []struct {
		in   string
		rest string
		ok   bool
	}{
		{"EXPLAIN ANALYZE SELECT 1 FROM fact", "SELECT 1 FROM fact", true},
		{"explain analyze\n SELECT id FROM fact", "SELECT id FROM fact", true},
		{"  Explain   Analyze SELECT id FROM fact", "SELECT id FROM fact", true},
		{"SELECT id FROM fact", "", false},
		{"EXPLAIN SELECT id FROM fact", "", false},
		{"EXPLAINANALYZE SELECT 1", "", false},
	}
	for _, c := range cases {
		rest, ok := StripExplainAnalyze(c.in)
		if ok != c.ok {
			t.Errorf("%q: ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && rest != c.rest {
			t.Errorf("%q: rest = %q, want %q", c.in, rest, c.rest)
		}
	}
}
